/**
 * @file
 * Tests for the persistent-request substrate (Section 3.2): the
 * arbiter handshake, starvation freedom under contention, fairness,
 * and the "null performance protocol" (TokenNull) that the paper uses
 * to argue performance protocols carry no correctness obligations —
 * every miss completes solely through persistent requests.
 */

#include <gtest/gtest.h>

#include "core/tokenb.hh"
#include "proto_test_util.hh"

namespace tokensim {
namespace {

using testutil::ProtoDriver;
using testutil::smallConfig;

constexpr Addr kBlock = 0x400;   // home node 0 on 4 nodes

TokenBMemory &
tmem(ProtoDriver &d, NodeId n)
{
    return dynamic_cast<TokenBMemory &>(d.sys->memory(n));
}

TEST(Persistent, NullProtocolCompletesViaPersistentRequests)
{
    // TokenNull issues no transient requests at all: the only way a
    // miss can complete is the persistent-request machinery.
    ProtoDriver d(smallConfig(ProtocolKind::tokenNull));
    const ProcResponse r = d.load(1, kBlock);
    EXPECT_TRUE(r.wasMiss);
    EXPECT_TRUE(r.usedPersistent);
    EXPECT_EQ(r.value, kBlock);
    d.drain();
    d.expectConserved();

    const ArbiterStats &as = tmem(d, 0).arbiter().stats();
    EXPECT_EQ(as.activations, 1u);
    EXPECT_EQ(as.deactivations, 1u);
    EXPECT_TRUE(tmem(d, 0).arbiter().quiescent());
}

TEST(Persistent, NullProtocolStoreGathersAllTokens)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenNull));
    const ProcResponse r = d.store(2, kBlock, 0xf00d);
    EXPECT_TRUE(r.usedPersistent);
    EXPECT_EQ(d.load(2, kBlock).value, 0xf00du);   // now a hit
    d.drain();
    d.expectConserved();
}

TEST(Persistent, TableEntriesClearAfterDeactivation)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenNull));
    d.load(1, kBlock);
    d.drain();
    // After deactivation the arbiter is idle; a later request must
    // activate afresh (entry was deleted everywhere).
    d.store(3, kBlock, 0x1);
    d.drain();
    const ArbiterStats &as = tmem(d, 0).arbiter().stats();
    EXPECT_EQ(as.activations, 2u);
    EXPECT_EQ(as.deactivations, 2u);
    EXPECT_TRUE(tmem(d, 0).arbiter().quiescent());
    d.expectConserved();
}

TEST(Persistent, QueuedRequestsActivateInTurn)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenNull));
    // All four nodes want to write the same block; requests queue at
    // the arbiter and are activated one at a time.
    for (NodeId n = 0; n < 4; ++n)
        d.issue(n, MemOp::store, kBlock, 0x100 + n);
    for (NodeId n = 0; n < 4; ++n)
        ASSERT_TRUE(d.runUntilCompletions(n, 1)) << "node " << n;
    d.drain();
    d.expectConserved();
    const ArbiterStats &as = tmem(d, 0).arbiter().stats();
    EXPECT_EQ(as.activations, 4u);
    EXPECT_EQ(as.deactivations, 4u);
    EXPECT_GE(as.maxQueueDepth, 2u);
    EXPECT_TRUE(tmem(d, 0).arbiter().quiescent());
}

TEST(Persistent, StarvationFreedomUnderHeavyContention)
{
    // Repeated conflicting stores through the persistent mechanism
    // only: every single one must complete (starvation freedom).
    ProtoDriver d(smallConfig(ProtocolKind::tokenNull));
    const int rounds = 5;
    for (int r = 0; r < rounds; ++r) {
        for (NodeId n = 0; n < 4; ++n)
            d.issue(n, MemOp::store, kBlock,
                    0x1000u * (r + 1) + n);
        for (NodeId n = 0; n < 4; ++n) {
            ASSERT_TRUE(d.runUntilCompletions(
                n, static_cast<std::size_t>(r + 1)))
                << "round " << r << " node " << n;
        }
    }
    d.drain();
    d.expectConserved();
    EXPECT_TRUE(tmem(d, 0).arbiter().quiescent());
}

TEST(Persistent, TokenBEscalatesWhenReissuesDisabled)
{
    // With reissues disabled, TokenB's unanswered misses must still
    // complete through the persistent path... but an uncontended miss
    // is answered by the first transient request, no escalation.
    SystemConfig cfg = smallConfig(ProtocolKind::tokenB);
    cfg.proto.reissueEnabled = false;
    ProtoDriver d(cfg);
    const ProcResponse r = d.load(1, kBlock);
    EXPECT_FALSE(r.usedPersistent);
    d.drain();
    d.expectConserved();
}

TEST(Persistent, ArbitersIndependentAcrossBlocks)
{
    // Different blocks (different homes) have independent arbiters:
    // concurrent persistent requests on them proceed in parallel.
    ProtoDriver d(smallConfig(ProtocolKind::tokenNull));
    const Addr block_home1 = 0x440;   // home 1
    const Addr block_home2 = 0x480;   // home 2
    d.issue(0, MemOp::store, block_home1, 0xa);
    d.issue(3, MemOp::store, block_home2, 0xb);
    ASSERT_TRUE(d.runUntilCompletions(0, 1));
    ASSERT_TRUE(d.runUntilCompletions(3, 1));
    d.drain();
    d.expectConserved();
    EXPECT_EQ(tmem(d, 1).arbiter().stats().activations, 1u);
    EXPECT_EQ(tmem(d, 2).arbiter().stats().activations, 1u);
}

TEST(Persistent, MixedTransientAndPersistentTraffic)
{
    // TokenB nodes race on a block while a TokenNull-style starving
    // pattern is emulated by disabling reissues on the whole system:
    // under contention some misses escalate, and all complete.
    SystemConfig cfg = smallConfig(ProtocolKind::tokenB);
    cfg.proto.reissueEnabled = false;   // first timeout -> persistent
    ProtoDriver d(cfg);
    const int rounds = 4;
    for (int r = 0; r < rounds; ++r) {
        for (NodeId n = 0; n < 4; ++n)
            d.issue(n, MemOp::store, kBlock, 0x10u * (r + 1) + n);
        for (NodeId n = 0; n < 4; ++n) {
            ASSERT_TRUE(d.runUntilCompletions(
                n, static_cast<std::size_t>(r + 1)));
        }
    }
    d.drain();
    d.expectConserved();
    EXPECT_TRUE(tmem(d, 0).arbiter().quiescent());
}

TEST(Persistent, PersistentRequestOnBlockHomedAtRequester)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenNull));
    // home(0x400) == 0, requester is also node 0: the arbiter,
    // memory, and starving cache share one node.
    const ProcResponse r = d.store(0, kBlock, 0x99);
    EXPECT_TRUE(r.usedPersistent);
    d.drain();
    d.expectConserved();
    EXPECT_TRUE(tmem(d, 0).arbiter().quiescent());
}

} // namespace
} // namespace tokensim
