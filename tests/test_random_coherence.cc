/**
 * @file
 * Random-tester soak: contended random loads/stores across every
 * protocol and topology, with per-load value checking (no stale
 * reads, no garbage), token-conservation audits, and final-state
 * agreement. This is the library's strongest correctness evidence —
 * the executable analogue of the paper's safety argument.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "harness/random_tester.hh"

namespace tokensim {
namespace {

struct SoakCase
{
    ProtocolKind protocol;
    const char *topology;
    int nodes;
    std::uint64_t blocks;
    bool l1;
    std::uint64_t seed;
    int tokensPerBlock = 0;   ///< 0 = numNodes (token protocols only)
};

class RandomSoak : public ::testing::TestWithParam<SoakCase>
{
};

TEST_P(RandomSoak, NoCoherenceViolations)
{
    const SoakCase &c = GetParam();
    RandomTesterConfig cfg;
    cfg.protocol = c.protocol;
    cfg.topology = c.topology;
    cfg.numNodes = c.nodes;
    cfg.blocks = c.blocks;
    cfg.l1Enabled = c.l1;
    cfg.seed = c.seed;
    cfg.tokensPerBlock = c.tokensPerBlock;
    cfg.opsPerProcessor =
        c.protocol == ProtocolKind::tokenNull ? 150 : 1500;
    const RandomTesterResult r = runRandomTester(cfg);
    EXPECT_TRUE(r.passed) << r.error;
    EXPECT_GT(r.loadsChecked, 0u);
    EXPECT_EQ(r.opsCompleted,
              static_cast<std::uint64_t>(c.nodes) *
                  cfg.opsPerProcessor);
}

std::string
soakName(const ::testing::TestParamInfo<SoakCase> &info)
{
    const SoakCase &c = info.param;
    return std::string(protocolName(c.protocol)) + "_" + c.topology +
        "_n" + std::to_string(c.nodes) + "_b" +
        std::to_string(c.blocks) + (c.l1 ? "_l1" : "_nol1") + "_s" +
        std::to_string(c.seed) +
        (c.tokensPerBlock ? "_t" + std::to_string(c.tokensPerBlock)
                          : std::string());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, RandomSoak,
    ::testing::Values(
        // TokenB: both topologies, with/without L1, tiny and larger
        // hot sets, several seeds.
        SoakCase{ProtocolKind::tokenB, "torus", 8, 4, true, 1},
        SoakCase{ProtocolKind::tokenB, "torus", 8, 4, false, 2},
        SoakCase{ProtocolKind::tokenB, "torus", 16, 8, true, 3},
        SoakCase{ProtocolKind::tokenB, "tree", 8, 4, true, 4},
        SoakCase{ProtocolKind::tokenB, "torus", 4, 1, true, 5},
        SoakCase{ProtocolKind::tokenB, "torus", 8, 64, true, 6},
        // The Section-7 performance protocols share the substrate.
        SoakCase{ProtocolKind::tokenD, "torus", 8, 4, true, 7},
        SoakCase{ProtocolKind::tokenM, "torus", 8, 4, true, 8},
        SoakCase{ProtocolKind::tokenM, "torus", 8, 16, false, 9},
        SoakCase{ProtocolKind::tokenA, "torus", 8, 4, true, 30},
        SoakCase{ProtocolKind::tokenA, "torus", 8, 16, false, 31},
        SoakCase{ProtocolKind::tokenNull, "torus", 4, 2, true, 10},
        // Baselines.
        SoakCase{ProtocolKind::snooping, "tree", 8, 4, true, 11},
        SoakCase{ProtocolKind::snooping, "tree", 8, 4, false, 12},
        SoakCase{ProtocolKind::snooping, "tree", 16, 8, true, 13},
        SoakCase{ProtocolKind::directory, "torus", 8, 4, true, 14},
        SoakCase{ProtocolKind::directory, "torus", 8, 4, false, 15},
        SoakCase{ProtocolKind::directory, "tree", 16, 8, true, 16},
        SoakCase{ProtocolKind::hammer, "torus", 8, 4, true, 17},
        SoakCase{ProtocolKind::hammer, "torus", 8, 4, false, 18},
        SoakCase{ProtocolKind::hammer, "tree", 16, 8, true, 19}),
    soakName);

INSTANTIATE_TEST_SUITE_P(
    SeedSweepTokenB, RandomSoak,
    ::testing::Values(
        SoakCase{ProtocolKind::tokenB, "torus", 8, 2, true, 100},
        SoakCase{ProtocolKind::tokenB, "torus", 8, 2, true, 101},
        SoakCase{ProtocolKind::tokenB, "torus", 8, 2, true, 102},
        SoakCase{ProtocolKind::tokenB, "torus", 8, 2, true, 103},
        SoakCase{ProtocolKind::tokenB, "torus", 8, 2, true, 104}),
    soakName);

/**
 * Seeded sweep over the full (protocol x topology x token count)
 * matrix. Each config soaks under contended random traffic; the
 * tester audits token conservation (invariant #1', via TokenAuditor)
 * throughout and at the end, and every processor retiring its whole
 * budget is the executable witness of starvation freedom (a starved
 * node would stall the run into the deadlock guard).
 */
std::vector<SoakCase>
scaleSweepCases()
{
    std::vector<SoakCase> cases;
    std::uint64_t seed = 1000;
    const ProtocolKind protos[] = {
        ProtocolKind::tokenB,    ProtocolKind::tokenD,
        ProtocolKind::tokenM,    ProtocolKind::snooping,
        ProtocolKind::directory, ProtocolKind::hammer,
    };
    for (ProtocolKind proto : protos) {
        for (const char *topo : {"torus", "tree"}) {
            // Traditional snooping exists only on the ordered tree.
            if (proto == ProtocolKind::snooping &&
                std::string(topo) == "torus")
                continue;
            // Token counts: the minimum (T = N), and an awkward
            // non-power-of-two surplus that stresses partial piles.
            // Non-token protocols have no token knob; run them once.
            std::vector<int> tokenCounts =
                isTokenProtocol(proto) ? std::vector<int>{0, 19}
                                       : std::vector<int>{0};
            for (int tokens : tokenCounts) {
                SoakCase c{proto, topo, 8, 6, true, ++seed};
                c.tokensPerBlock = tokens;
                cases.push_back(c);
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(ScaleSweep, RandomSoak,
                         ::testing::ValuesIn(scaleSweepCases()),
                         soakName);

TEST(RandomSoakStress, TokenBHighContentionUsesPersistentRequests)
{
    // A single hot block hammered by stores: racing transient
    // requests split tokens, so reissues and occasionally persistent
    // requests must kick in — and correctness must hold throughout.
    RandomTesterConfig cfg;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.numNodes = 8;
    cfg.blocks = 1;
    cfg.storeFraction = 0.9;
    cfg.opsPerProcessor = 1200;
    cfg.seed = 42;
    const RandomTesterResult r = runRandomTester(cfg);
    EXPECT_TRUE(r.passed) << r.error;
    EXPECT_GT(r.reissuedMisses, 0u)
        << "contention should force reissues";
}

TEST(RandomSoakStress, BandwidthLimitedAndUnlimitedBothCorrect)
{
    for (bool unlimited : {false, true}) {
        RandomTesterConfig cfg;
        cfg.protocol = ProtocolKind::tokenB;
        cfg.numNodes = 8;
        cfg.blocks = 4;
        cfg.unlimitedBandwidth = unlimited;
        cfg.opsPerProcessor = 1000;
        cfg.seed = 7;
        const RandomTesterResult r = runRandomTester(cfg);
        EXPECT_TRUE(r.passed) << r.error;
    }
}

TEST(RandomSoakStress, ExtraTokensPerBlock)
{
    // T > numProcs stresses the counting paths with partial piles.
    RandomTesterConfig cfg;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.numNodes = 4;
    cfg.tokensPerBlock = 19;   // deliberately odd
    cfg.blocks = 3;
    cfg.opsPerProcessor = 1000;
    cfg.seed = 21;
    const RandomTesterResult r = runRandomTester(cfg);
    EXPECT_TRUE(r.passed) << r.error;
}

TEST(RandomSoakStress, ManyOutstandingRequestsPerProcessor)
{
    RandomTesterConfig cfg;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.numNodes = 8;
    cfg.blocks = 16;
    cfg.maxOutstanding = 8;
    cfg.opsPerProcessor = 1500;
    cfg.seed = 33;
    const RandomTesterResult r = runRandomTester(cfg);
    EXPECT_TRUE(r.passed) << r.error;
}

} // namespace
} // namespace tokensim
