/**
 * @file
 * Gates for SMARTS-style sampled simulation and warm-state snapshots.
 *
 * The contracts pinned here:
 *  - fast-forward conserves tokens (the auditor checks every touched
 *    block) and leaves a state the detailed engine runs cleanly from,
 *    for every protocol family;
 *  - a sampled run is deterministic and bit-identical across the
 *    serial loop, ParallelRunner, and DistRunner at several widths
 *    (fast-forward must not introduce any scheduling sensitivity);
 *  - saving a warm snapshot and restoring it into a fresh System is
 *    bit-equivalent to performing the same fast-forward in place;
 *  - one snapshot serves every timing config sharing the shape
 *    fingerprint, and every bound-field mismatch is a typed error;
 *  - sampled means land within a computed confidence band of the
 *    full-run oracle on the commercial workloads.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "harness/dist_runner.hh"
#include "harness/parallel_runner.hh"
#include "harness/snapshot.hh"
#include "harness/system.hh"

namespace tokensim {
namespace {

SystemConfig
baseCfg(ProtocolKind proto, const char *wl = "oltp")
{
    SystemConfig cfg;
    cfg.numNodes = 8;
    cfg.topology =
        proto == ProtocolKind::snooping ? "tree" : "torus";
    cfg.protocol = proto;
    cfg.workload = wl;
    cfg.opsPerProcessor = 300;
    cfg.seed = 41;
    return cfg;
}

constexpr ProtocolKind snapshotFamilies[] = {
    ProtocolKind::snooping, ProtocolKind::directory,
    ProtocolKind::hammer, ProtocolKind::tokenB,
    ProtocolKind::tokenD, ProtocolKind::tokenM,
    ProtocolKind::tokenA, ProtocolKind::tokenNull,
};

std::shared_ptr<const std::string>
share(std::string s)
{
    return std::make_shared<const std::string>(std::move(s));
}

// ---------------------------------------------------------------------
// Fast-forward.
// ---------------------------------------------------------------------

TEST(FastForward, ConservesTokensAndRunsDetailedAfter)
{
    const ProtocolKind tokenProtos[] = {
        ProtocolKind::tokenB, ProtocolKind::tokenD,
        ProtocolKind::tokenM, ProtocolKind::tokenA,
        ProtocolKind::tokenNull,
    };
    for (ProtocolKind proto : tokenProtos) {
        SystemConfig cfg = baseCfg(proto);
        cfg.attachAuditor = true;
        cfg.opsPerProcessor = 200;
        System sys(cfg);
        sys.fastForward(2000);
        std::string err;
        EXPECT_TRUE(sys.auditor()->auditAll(&err))
            << protocolName(proto) << " after fast-forward: " << err;
        sys.run();
        EXPECT_TRUE(sys.auditor()->auditAll(&err))
            << protocolName(proto) << " after detailed run: " << err;
        EXPECT_EQ(sys.results().ops(),
                  static_cast<std::uint64_t>(cfg.numNodes) *
                      cfg.opsPerProcessor);
    }
}

TEST(FastForward, DetailedContinuationIsDeterministic)
{
    // FF K ops then run detailed, twice: bit-identical registries.
    for (ProtocolKind proto : snapshotFamilies) {
        SystemConfig cfg = baseCfg(proto);
        auto once = [&cfg]() {
            System sys(cfg);
            sys.fastForward(1500);
            sys.run();
            return sys.results();
        };
        const System::Results a = once();
        const System::Results b = once();
        EXPECT_TRUE(a.metrics == b.metrics) << protocolName(proto);
    }
}

TEST(FastForward, AdvancesWarmStateNotTime)
{
    SystemConfig cfg = baseCfg(ProtocolKind::tokenB);
    System sys(cfg);
    sys.fastForward(3000);
    EXPECT_EQ(sys.eq().curTick(), Tick{0});
    EXPECT_EQ(sys.sequencer(0).completedOps(), std::uint64_t{3000});
    // Warm state exists: the L2 is populated.
    std::uint64_t warmed = 0;
    for (int i = 0; i < cfg.numNodes; ++i) {
        for (Addr a = 0; a < 64 * 1024; a += cfg.blockBytes)
            warmed += sys.cache(static_cast<NodeId>(i))
                          .hasPermission(a, MemOp::load);
    }
    EXPECT_GT(warmed, 0u);
}

// ---------------------------------------------------------------------
// Sampled runs.
// ---------------------------------------------------------------------

TEST(Sampling, PoolsOneSamplePerWindow)
{
    SystemConfig cfg = baseCfg(ProtocolKind::tokenB);
    cfg.sampling = SamplingSpec{400, 100, 4};
    System sys(cfg);
    sys.run();
    const System::Results r = sys.results();
    // Detailed ops only: windows * measureOps per node.
    EXPECT_EQ(r.ops(), std::uint64_t{4 * 100 * 8});
    // One cpt sample per window, so the pooled stat carries an
    // across-window standard error.
    EXPECT_GT(r.missLatency().count(), 0u);
    EXPECT_EQ(r.metrics.statValue("cpt_ns").count(), std::uint64_t{4});
}

std::vector<ExperimentSpec>
sampledMatrix()
{
    std::vector<ExperimentSpec> specs;
    const ProtocolKind protos[] = {
        ProtocolKind::tokenB, ProtocolKind::snooping,
        ProtocolKind::directory, ProtocolKind::hammer,
    };
    for (ProtocolKind p : protos) {
        SystemConfig cfg = baseCfg(p);
        cfg.sampling = SamplingSpec{300, 100, 3};
        specs.push_back(
            ExperimentSpec{cfg, 2, protocolName(p)});
    }
    return specs;
}

void
expectSameDigests(const std::vector<ExperimentResult> &a,
                  const std::vector<ExperimentResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(identicalResults(a[i], b[i])) << a[i].label;
        EXPECT_EQ(resultDigest(a[i]), resultDigest(b[i]));
    }
}

TEST(Sampling, BitIdenticalAcrossParallelWidths)
{
    const std::vector<ExperimentSpec> specs = sampledMatrix();
    const std::vector<ExperimentResult> serial =
        ParallelRunner(ParallelRunnerOptions{1}).run(specs);
    for (int threads : {2, 4}) {
        expectSameDigests(
            ParallelRunner(ParallelRunnerOptions{threads}).run(specs),
            serial);
    }
}

TEST(Sampling, BitIdenticalAcrossDistWidths)
{
    const std::vector<ExperimentSpec> specs = sampledMatrix();
    const std::vector<ExperimentResult> serial =
        ParallelRunner(ParallelRunnerOptions{1}).run(specs);
    for (int workers : {1, 2, 4}) {
        DistRunnerOptions opts;
        opts.workers = workers;
        expectSameDigests(DistRunner(std::move(opts)).run(specs),
                          serial);
    }
}

TEST(Sampling, RecordTraceIsRejected)
{
    SystemConfig cfg = baseCfg(ProtocolKind::tokenB);
    cfg.sampling = SamplingSpec{100, 50, 2};
    cfg.recordTrace = "/tmp/tokensim_sampling_reject.trace";
    System sys(cfg);
    EXPECT_THROW(sys.run(), std::runtime_error);
}

// ---------------------------------------------------------------------
// Warm-state snapshots.
// ---------------------------------------------------------------------

TEST(Snapshot, SaveLoadEquivalentToWarmingInPlace)
{
    for (ProtocolKind proto : snapshotFamilies) {
        SystemConfig cfg = baseCfg(proto);

        System inPlace(cfg);
        inPlace.fastForward(1500);

        System producer(cfg);
        producer.fastForward(1500);
        SystemConfig warmed = cfg;
        warmed.warmSnapshot = share(saveWarmSnapshot(producer));
        System restored(warmed);

        inPlace.run();
        restored.run();
        EXPECT_TRUE(inPlace.results().metrics ==
                    restored.results().metrics)
            << protocolName(proto);
    }
}

TEST(Snapshot, RoundTripsThroughTheCodec)
{
    // decode(encode(x)) re-encodes to the identical bytes — the
    // canonical-encoding contract the fuzz suite leans on.
    for (ProtocolKind proto : snapshotFamilies) {
        SystemConfig cfg = baseCfg(proto);
        System a(cfg);
        a.fastForward(1200);
        const std::string snap = saveWarmSnapshot(a);

        SystemConfig warmed = cfg;
        warmed.warmSnapshot = share(snap);
        System b(cfg);
        ASSERT_TRUE(b.reset(warmed));
        loadWarmSnapshot(b, snap);
        EXPECT_EQ(saveWarmSnapshot(b), snap) << protocolName(proto);
    }
}

TEST(Snapshot, ReusableAcrossTimingConfigs)
{
    // The reuse rule: one snapshot serves every config that differs
    // only in timing knobs. The warmed runs must load cleanly and
    // produce timing-dependent (different) results.
    SystemConfig cfg = baseCfg(ProtocolKind::tokenB);
    System producer(cfg);
    producer.fastForward(2000);
    const auto snap = share(saveWarmSnapshot(producer));

    SystemConfig fast = cfg;
    fast.warmSnapshot = snap;
    SystemConfig slow = fast;
    slow.net.linkLatency = nsToTicks(45);
    slow.ctrlLatency = nsToTicks(12);

    System a(fast);
    a.run();
    System b(slow);
    b.run();
    EXPECT_EQ(a.results().ops(), b.results().ops());
    EXPECT_NE(a.results().runtimeTicks(), b.results().runtimeTicks());
}

TEST(Snapshot, FeedsSampledRuns)
{
    SystemConfig cfg = baseCfg(ProtocolKind::directory);
    System producer(cfg);
    producer.fastForward(1000);
    SystemConfig warmed = cfg;
    warmed.warmSnapshot = share(saveWarmSnapshot(producer));
    warmed.sampling = SamplingSpec{200, 100, 3};
    System sys(warmed);
    sys.run();
    EXPECT_EQ(sys.results().ops(), std::uint64_t{3 * 100 * 8});
}

TEST(Snapshot, EveryBoundFieldMismatchIsTyped)
{
    SystemConfig cfg = baseCfg(ProtocolKind::tokenB);
    System producer(cfg);
    producer.fastForward(500);
    const auto snap = share(saveWarmSnapshot(producer));

    const auto expectRejected = [&](SystemConfig bad) {
        bad.warmSnapshot = snap;
        System sys(bad);
        EXPECT_THROW(sys.run(), SnapshotError);
    };

    SystemConfig c1 = cfg;
    c1.seed = cfg.seed + 1;
    expectRejected(c1);

    SystemConfig c2 = cfg;
    c2.workload = "uniform";
    expectRejected(c2);

    SystemConfig c3 = cfg;
    c3.workload.storeFraction = 0.5;   // a preset knob is binding too
    expectRejected(c3);

    SystemConfig c4 = cfg;
    c4.l2.sizeBytes = cfg.l2.sizeBytes / 2;
    expectRejected(c4);

    SystemConfig c5 = cfg;
    c5.protocol = ProtocolKind::tokenD;
    expectRejected(c5);

    SystemConfig c6 = cfg;
    c6.seq.l1Enabled = false;
    expectRejected(c6);
}

TEST(Snapshot, LifecycleMisuseIsTyped)
{
    SystemConfig cfg = baseCfg(ProtocolKind::tokenB);
    // Saving after detailed simulation ran.
    System ran(cfg);
    ran.run();
    EXPECT_THROW(saveWarmSnapshot(ran), SnapshotError);
    // Saving from a trace-recording System.
    SystemConfig rec = cfg;
    rec.recordTrace = "/tmp/tokensim_snapshot_reject.trace";
    System recording(rec);
    EXPECT_THROW(saveWarmSnapshot(recording), SnapshotError);
    // Restoring into a trace-recording System.
    System producer(cfg);
    producer.fastForward(200);
    rec.warmSnapshot = share(saveWarmSnapshot(producer));
    System sys(rec);
    EXPECT_THROW(sys.run(), std::runtime_error);
}

// ---------------------------------------------------------------------
// Sampled accuracy against the full-run oracle.
// ---------------------------------------------------------------------

TEST(Sampling, MeansWithinConfidenceBandOfFullRun)
{
    // Equal total workload: the full run executes every op detailed;
    // the sampled run fast-forwards 5/6 of them and measures windows.
    // The sampled means must land inside a band computed from both
    // runs' standard errors (with a small relative floor — these are
    // finite runs of a bursty system, not i.i.d. samples).
    for (const char *wl : {"oltp", "producer-consumer"}) {
        SystemConfig full = baseCfg(ProtocolKind::tokenB, wl);
        full.warmupOpsPerProcessor = 1000;
        full.opsPerProcessor = 12000;

        SystemConfig sampled = full;
        sampled.opsPerProcessor = 0;
        sampled.sampling = SamplingSpec{1250, 250, 8};

        System fs(full);
        fs.run();
        System ss(sampled);
        ss.run();
        const System::Results fr = fs.results();
        const System::Results sr = ss.results();

        const RunningStat fml = fr.missLatency();
        const RunningStat sml = sr.missLatency();
        ASSERT_GT(fml.count(), 0u) << wl;
        ASSERT_GT(sml.count(), 0u) << wl;
        const double mlBand =
            3.0 * (fml.stddev() / std::sqrt(double(fml.count())) +
                   sml.stddev() / std::sqrt(double(sml.count()))) +
            0.10 * fml.mean();
        EXPECT_NEAR(sml.mean(), fml.mean(), mlBand) << wl;

        const RunningStat scpt = sr.metrics.statValue("cpt_ns");
        const double fcpt = fr.cyclesPerTransaction();
        ASSERT_EQ(scpt.count(), 8u) << wl;
        const double cptBand =
            4.0 * scpt.stddev() / std::sqrt(double(scpt.count())) +
            0.12 * fcpt;
        EXPECT_NEAR(scpt.mean(), fcpt, cptBand) << wl;
    }
}

// ---------------------------------------------------------------------
// Transactional presets and multi-tenant node groups.
// ---------------------------------------------------------------------

TEST(FastForward, ConservesTokensOnTransactionalPresets)
{
    for (const char *wl : {"ycsb", "tpcc"}) {
        for (ProtocolKind proto :
             {ProtocolKind::tokenB, ProtocolKind::tokenM}) {
            SystemConfig cfg = baseCfg(proto, wl);
            cfg.attachAuditor = true;
            cfg.opsPerProcessor = 200;
            System sys(cfg);
            sys.fastForward(2000);
            std::string err;
            EXPECT_TRUE(sys.auditor()->auditAll(&err))
                << wl << "/" << protocolName(proto)
                << " after fast-forward: " << err;
            sys.run();
            EXPECT_TRUE(sys.auditor()->auditAll(&err))
                << wl << "/" << protocolName(proto)
                << " after detailed run: " << err;
            EXPECT_EQ(sys.results().ops(),
                      static_cast<std::uint64_t>(cfg.numNodes) *
                          cfg.opsPerProcessor);
        }
    }
}

SystemConfig
twoTenantCfg(ProtocolKind proto)
{
    SystemConfig cfg = baseCfg(proto);
    cfg.tenants = {TenantSpec{WorkloadSpec("ycsb"), 4},
                   TenantSpec{WorkloadSpec("tpcc"), 4}};
    return cfg;
}

TEST(MultiTenant, BitIdenticalAcrossRunnerWidths)
{
    std::vector<ExperimentSpec> specs;
    for (ProtocolKind p :
         {ProtocolKind::tokenB, ProtocolKind::directory}) {
        SystemConfig cfg = twoTenantCfg(p);
        cfg.sampling = SamplingSpec{300, 100, 3};
        cfg.opsPerProcessor = 0;
        specs.push_back(ExperimentSpec{cfg, 2, protocolName(p)});
    }
    const std::vector<ExperimentResult> serial =
        ParallelRunner(ParallelRunnerOptions{1}).run(specs);
    for (int threads : {2, 4}) {
        expectSameDigests(
            ParallelRunner(ParallelRunnerOptions{threads}).run(specs),
            serial);
    }
    for (int workers : {1, 2, 4}) {
        DistRunnerOptions opts;
        opts.workers = workers;
        expectSameDigests(DistRunner(std::move(opts)).run(specs),
                          serial);
    }
}

TEST(MultiTenant, PerTenantMetricsPartitionSystemOps)
{
    SystemConfig cfg = twoTenantCfg(ProtocolKind::tokenB);
    System sys(cfg);
    sys.run();
    const System::Results r = sys.results();
    const std::uint64_t t0 = r.metrics.counterValue("tenant0_ops");
    const std::uint64_t t1 = r.metrics.counterValue("tenant1_ops");
    // Each group ran its own budget; together they are the system.
    EXPECT_EQ(t0, std::uint64_t{4} * cfg.opsPerProcessor);
    EXPECT_EQ(t1, std::uint64_t{4} * cfg.opsPerProcessor);
    EXPECT_EQ(t0 + t1, r.ops());
    // Both groups missed in their own address spaces.
    EXPECT_GT(
        r.metrics.statValue("tenant0_miss_latency_ticks").count(), 0u);
    EXPECT_GT(
        r.metrics.statValue("tenant1_miss_latency_ticks").count(), 0u);
}

TEST(MultiTenant, BadGroupConfigsAreTyped)
{
    // Group sizes must cover the machine exactly.
    SystemConfig cfg = twoTenantCfg(ProtocolKind::tokenB);
    cfg.tenants[1].nodes = 3;
    EXPECT_THROW(System{cfg}, std::invalid_argument);
    cfg.tenants[1].nodes = 5;
    EXPECT_THROW(System{cfg}, std::invalid_argument);
    // Empty groups are meaningless.
    cfg.tenants[1].nodes = 0;
    EXPECT_THROW(System{cfg}, std::invalid_argument);
    // Recorded traces bake in a whole machine's node count.
    cfg = twoTenantCfg(ProtocolKind::tokenB);
    cfg.tenants[0].workload = WorkloadSpec::trace("whole.trace");
    EXPECT_THROW(System{cfg}, std::invalid_argument);
}

TEST(MultiTenant, ShapeFingerprintSeesTenantList)
{
    const SystemConfig plain = baseCfg(ProtocolKind::tokenB);
    SystemConfig tenanted = twoTenantCfg(ProtocolKind::tokenB);
    EXPECT_NE(snapshotShapeFingerprint(plain),
              snapshotShapeFingerprint(tenanted));
    SystemConfig resized = tenanted;
    resized.tenants[0].nodes = 5;
    resized.tenants[1].nodes = 3;
    EXPECT_NE(snapshotShapeFingerprint(tenanted),
              snapshotShapeFingerprint(resized));
}

// ---------------------------------------------------------------------
// Kilonode scale.
// ---------------------------------------------------------------------

TEST(Sampling, KilonodeSampledSmoke)
{
    // 1024 nodes end to end: small caches keep the footprint sane;
    // the directory protocol avoids kilonode broadcast storms. This
    // is the tier that flushed out <=64-node capacity assumptions
    // (DestSetPredictor's single-word mask).
    SystemConfig cfg;
    cfg.numNodes = 1024;
    cfg.topology = "torus";
    cfg.protocol = ProtocolKind::directory;
    cfg.workload = "ycsb";
    cfg.l2 = CacheParams{64 * 1024, 4, 64, nsToTicks(6)};
    cfg.seq.l1 = CacheParams{16 * 1024, 2, 64, nsToTicks(1)};
    cfg.sampling = SamplingSpec{200, 50, 2};
    cfg.opsPerProcessor = 0;
    cfg.seed = 97;
    System sys(cfg);
    sys.run();
    const System::Results r = sys.results();
    EXPECT_EQ(r.ops(), std::uint64_t{2 * 50 * 1024});
    EXPECT_GT(r.missLatency().count(), 0u);
}

TEST(MultiTenant, KilonodeTenantsKeepDisjointFootprints)
{
    SystemConfig cfg;
    cfg.numNodes = 1024;
    cfg.topology = "torus";
    cfg.protocol = ProtocolKind::directory;
    cfg.tenants = {TenantSpec{WorkloadSpec("ycsb"), 512},
                   TenantSpec{WorkloadSpec("tpcc"), 512}};
    cfg.l2 = CacheParams{64 * 1024, 4, 64, nsToTicks(6)};
    cfg.seq.l1 = CacheParams{16 * 1024, 2, 64, nsToTicks(1)};
    cfg.opsPerProcessor = 60;
    cfg.seed = 98;
    System sys(cfg);
    sys.run();
    const System::Results r = sys.results();
    EXPECT_EQ(r.metrics.counterValue("tenant0_ops"),
              std::uint64_t{512 * 60});
    EXPECT_EQ(r.metrics.counterValue("tenant1_ops"),
              std::uint64_t{512 * 60});
}

} // namespace
} // namespace tokensim
