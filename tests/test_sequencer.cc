/**
 * @file
 * Tests for the sequencer processor model: budgets, L1 filtering and
 * inclusion, same-block serialization, and think-time pacing — run on
 * a real (TokenB) protocol stack.
 */

#include <gtest/gtest.h>

#include <deque>

#include "harness/system.hh"

namespace tokensim {
namespace {

/** Workload replaying a fixed script. */
class ScriptedWorkload : public Workload
{
  public:
    explicit ScriptedWorkload(std::vector<WorkloadOp> script)
        : script_(std::move(script))
    {}

    WorkloadOp
    next() override
    {
        if (pos_ < script_.size())
            return script_[pos_++];
        // Pad with private-ish loads if over-asked.
        WorkloadOp op;
        op.addr = 0x10000 + 64 * (pos_++ % 8);
        return op;
    }

    std::string name() const override { return "scripted"; }

  private:
    std::vector<WorkloadOp> script_;
    std::size_t pos_ = 0;
};

SystemConfig
seqConfig(std::vector<std::vector<WorkloadOp>> scripts,
          std::uint64_t ops)
{
    SystemConfig cfg;
    cfg.numNodes = 4;
    cfg.topology = "torus";
    cfg.protocol = ProtocolKind::tokenB;
    cfg.attachAuditor = true;
    cfg.opsPerProcessor = ops;
    auto shared = std::make_shared<
        std::vector<std::vector<WorkloadOp>>>(std::move(scripts));
    cfg.workloadFactory = [shared](NodeId node, int, std::uint64_t)
        -> std::unique_ptr<Workload> {
        if (node < shared->size())
            return std::make_unique<ScriptedWorkload>((*shared)[node]);
        return std::make_unique<ScriptedWorkload>(
            std::vector<WorkloadOp>{});
    };
    return cfg;
}

TEST(Sequencer, CompletesExactBudget)
{
    SystemConfig cfg = seqConfig({}, 50);
    System sys(cfg);
    sys.run();
    for (int n = 0; n < 4; ++n) {
        EXPECT_EQ(sys.sequencer(static_cast<NodeId>(n))
                      .stats().opsCompleted, 50u);
        EXPECT_TRUE(sys.sequencer(static_cast<NodeId>(n)).done());
    }
}

TEST(Sequencer, L1FiltersRepeatedLoads)
{
    // Node 0 loads the same block many times: first access misses
    // everywhere, the rest hit the L1 and never reach the L2.
    std::vector<WorkloadOp> script;
    for (int i = 0; i < 20; ++i)
        script.push_back(WorkloadOp{MemOp::load, 0x4000, false});
    SystemConfig cfg = seqConfig({script}, 20);
    System sys(cfg);
    sys.run();
    const SequencerStats &ss = sys.sequencer(0).stats();
    EXPECT_EQ(ss.opsCompleted, 20u);
    EXPECT_EQ(ss.l2Accesses, 1u);
    EXPECT_EQ(ss.l1Hits, 19u);
}

TEST(Sequencer, L1DisabledSendsEverythingToL2)
{
    std::vector<WorkloadOp> script;
    for (int i = 0; i < 10; ++i)
        script.push_back(WorkloadOp{MemOp::load, 0x4000, false});
    SystemConfig cfg = seqConfig({script}, 10);
    cfg.seq.l1Enabled = false;
    System sys(cfg);
    sys.run();
    EXPECT_EQ(sys.sequencer(0).stats().l2Accesses, 10u);
    EXPECT_EQ(sys.sequencer(0).stats().l1Hits, 0u);
}

TEST(Sequencer, StoresWriteThroughToL2)
{
    std::vector<WorkloadOp> script;
    script.push_back(WorkloadOp{MemOp::load, 0x4000, false});
    for (int i = 0; i < 5; ++i)
        script.push_back(WorkloadOp{MemOp::store, 0x4000, false});
    SystemConfig cfg = seqConfig({script}, 6);
    System sys(cfg);
    sys.run();
    // 1 load + 5 stores all reach the L2 (write-through L1).
    EXPECT_EQ(sys.sequencer(0).stats().l2Accesses, 6u);
}

TEST(Sequencer, L1InclusionInvalidatedByRemoteStore)
{
    // Node 0 loads a block twice (the second would be an L1 hit); a
    // remote store is injected between them, which must invalidate
    // node 0's L1 copy so the second load goes back to the L2 and
    // observes the new value.
    std::vector<WorkloadOp> s0{
        WorkloadOp{MemOp::load, 0x4000, false},
        WorkloadOp{MemOp::load, 0x4000, false},
    };
    SystemConfig cfg = seqConfig({s0, {}}, 2);
    // Space the two loads far apart so the injected store completes
    // strictly between them.
    cfg.seq.thinkMean = nsToTicks(100000);
    System sys(cfg);
    std::vector<ProcResponse> done0;
    sys.sequencer(0).setObserver(
        [&](NodeId, const ProcResponse &r) { done0.push_back(r); });

    sys.sequencer(0).start();
    ASSERT_TRUE(sys.eq().runUntil(
        [&]() { return done0.size() >= 1; },
        nsToTicks(10'000'000)));

    // Inject node 1's store directly at its cache controller.
    bool store_done = false;
    sys.cache(1).setCompletionCallback(
        [&](const ProcResponse &) { store_done = true; });
    ProcRequest st;
    st.op = MemOp::store;
    st.addr = 0x4000;
    st.storeValue = 0x7777;
    st.reqId = 1;
    sys.cache(1).request(st);
    ASSERT_TRUE(sys.eq().runUntil([&]() { return store_done; },
                                  nsToTicks(10'000'000)));

    // Let node 0's second load run.
    ASSERT_TRUE(sys.eq().runUntil(
        [&]() { return done0.size() >= 2; },
        nsToTicks(1'000'000'000)));
    EXPECT_EQ(done0[1].value, 0x7777u);
    // Both loads reached the L2: the L1 copy was invalidated.
    EXPECT_EQ(sys.sequencer(0).stats().l2Accesses, 2u);
    EXPECT_EQ(sys.sequencer(0).stats().l1Hits, 0u);
}

TEST(Sequencer, SameBlockOpsSerialize)
{
    // Two back-to-back stores to one block from one node: the
    // second must wait for the first (no duplicate outstanding
    // transactions — the protocols assert on this).
    std::vector<WorkloadOp> script{
        WorkloadOp{MemOp::store, 0x4000, false},
        WorkloadOp{MemOp::store, 0x4000, false},
        WorkloadOp{MemOp::store, 0x4000, false},
    };
    SystemConfig cfg = seqConfig({script}, 3);
    cfg.seq.maxOutstanding = 4;
    System sys(cfg);
    sys.run();   // protocol asserts would fire on violation
    EXPECT_EQ(sys.sequencer(0).stats().opsCompleted, 3u);
}

TEST(Sequencer, TransactionCounting)
{
    std::vector<WorkloadOp> script;
    for (int i = 0; i < 12; ++i)
        script.push_back(WorkloadOp{MemOp::load,
                                    0x4000u + 64u * (i % 4),
                                    (i % 3) == 2});
    SystemConfig cfg = seqConfig({script}, 12);
    System sys(cfg);
    sys.run();
    EXPECT_EQ(sys.sequencer(0).stats().transactions, 4u);
}

TEST(Sequencer, ObserverSeesL2Completions)
{
    std::vector<WorkloadOp> script{
        WorkloadOp{MemOp::store, 0x4000, false},
        WorkloadOp{MemOp::load, 0x4040, false},
    };
    SystemConfig cfg = seqConfig({script}, 2);
    System sys(cfg);
    int observed = 0;
    sys.sequencer(0).setObserver(
        [&](NodeId node, const ProcResponse &r) {
            EXPECT_EQ(node, 0u);
            EXPECT_TRUE(r.op == MemOp::store || r.op == MemOp::load);
            ++observed;
        });
    sys.run();
    EXPECT_EQ(observed, 2);
}

} // namespace
} // namespace tokensim
