/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, time
 * conversions, the deterministic RNG, the statistics utilities, and
 * the allocation-freedom of the Event record / bucket-ring steady
 * state (enforced with a counting global operator new).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

// The counting operator new below pairs malloc with the (correctly
// overridden) deletes; GCC's heuristic cannot see the pairing through
// the replacement and warns spuriously.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {

/** Global allocation counter for the no-alloc steady-state tests. */
std::atomic<std::uint64_t> gAllocCount{0};

std::uint64_t
allocCount()
{
    return gAllocCount.load(std::memory_order_relaxed);
}

} // namespace

void *
operator new(std::size_t n)
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace tokensim {
namespace {

// The Event record's size contract: two cache lines, inline storage
// only. The constructor's static_assert rejects any closure in src/
// that would not fit, so compiling the library is itself the proof
// that no event capture can spill to the heap.
static_assert(sizeof(Event) == 128, "Event record size contract");
static_assert(Event::inlineCapacity == 120,
              "Event inline capacity contract");

TEST(EventRecord, InvokesAndDestroysCapturesExactlyOnce)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    int fired = 0;
    {
        EventQueue eq;
        eq.schedule(5, [token, &fired]() { fired += *token; });
        token.reset();
        EXPECT_FALSE(watch.expired());   // capture keeps it alive
        eq.run();
        EXPECT_EQ(fired, 7);
        EXPECT_TRUE(watch.expired());    // dispatch destroyed it
    }
}

TEST(EventRecord, PendingCapturesReleasedOnQueueDestruction)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    {
        EventQueue eq;
        eq.schedule(10, [token]() {});
        eq.schedule(100000, [token]() {});   // far-horizon copy too
        token.reset();
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(EventRecord, SteadyStateSchedulingIsAllocationFree)
{
    EventQueue eq;
    auto round = [&eq]() {
        std::uint64_t sink = 0;
        for (int i = 0; i < 512; ++i) {
            eq.scheduleIn(static_cast<Tick>((i * 37) % 300),
                          [&sink]() { ++sink; });
        }
        for (int i = 0; i < 64; ++i) {
            // Beyond the ring horizon: exercises the overflow heap.
            eq.scheduleIn(static_cast<Tick>(5000 + (i * 911) % 90000),
                          [&sink]() { ++sink; });
        }
        eq.run();
        EXPECT_EQ(sink, 576u);
    };
    // Reset between rounds like the reusable-System path does, so
    // every round schedules into the same ring slots.
    round();   // warm the ring buckets, drain buffer, overflow heap
    eq.reset();
    round();
    eq.reset();
    const std::uint64_t before = allocCount();
    round();
    eq.reset();
    round();
    EXPECT_EQ(allocCount(), before)
        << "event scheduling/dispatch allocated on a warmed queue";
}

TEST(EventQueue, ResetRestoresFreshStateKeepingStorage)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    EventQueue eq;
    int ran = 0;
    eq.schedule(3, [&ran]() { ++ran; });
    eq.run();
    eq.schedule(eq.curTick() + 1, [token, &ran]() { ++ran; });
    eq.schedule(eq.curTick() + 50000, [token, &ran]() { ++ran; });
    token.reset();

    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
    EXPECT_TRUE(watch.expired());   // pending captures destroyed

    eq.schedule(2, [&ran]() { ran += 10; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(ran, 11);
    EXPECT_EQ(eq.curTick(), 2u);
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(Types, TickConversions)
{
    EXPECT_EQ(nsToTicks(15), 150u);
    EXPECT_EQ(ticksToNs(150), 15u);
    EXPECT_DOUBLE_EQ(ticksToNsF(Tick{25}), 2.5);
    // The double overload preserves fractional ticks (a pooled
    // latency mean is rarely integral).
    EXPECT_DOUBLE_EQ(ticksToNsF(3.5), 0.35);
    EXPECT_EQ(nsToTicks(0), 0u);
}

TEST(Types, BitHelpers)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(65));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        eq.scheduleIn(5, [&]() {
            ++fired;
            eq.scheduleIn(5, [&]() { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 11u);
}

TEST(EventQueue, MaxTickStopsExecution)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(100, [&]() { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventAtExactlyMaxTickRuns)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(50, [&]() { ++fired; });
    EXPECT_TRUE(eq.run(50));
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        eq.schedule(static_cast<Tick>(i), [&]() { ++count; });
    EXPECT_TRUE(eq.runUntil([&]() { return count == 4; }));
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.curTick(), 4u);
}

TEST(EventQueue, PastScheduleClampsToNow)
{
    EventQueue eq;
    Tick seen = tickNever;
    eq.schedule(100, [&]() {
        // Scheduling "in the past" must not rewind time.
        eq.schedule(5, [&]() { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 100u);
}

// --- Bucketed-queue specifics: the ring horizon is 4096 ticks, so
// these exercise the overflow heap and the migrate-on-advance path.

TEST(EventQueue, FarFutureEventsRunInOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100000, [&]() { order.push_back(3); });
    eq.schedule(50000, [&]() { order.push_back(2); });
    eq.schedule(3, [&]() { order.push_back(1); });
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 100000u);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, FarFutureSameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(1 << 20, [&, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, FifoAcrossHorizonMigration)
{
    // a and b start beyond the ring horizon; c is scheduled for the
    // same tick once that tick is inside the window. FIFO order of
    // scheduling (a, b, c) must survive the overflow->ring migration.
    EventQueue eq;
    std::vector<char> order;
    eq.schedule(5000, [&]() { order.push_back('a'); });
    eq.schedule(5000, [&]() { order.push_back('b'); });
    EXPECT_FALSE(eq.run(4000));
    EXPECT_EQ(eq.curTick(), 4000u);
    eq.schedule(5000, [&]() { order.push_back('c'); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c'}));
}

TEST(EventQueue, DenseAndSparseMix)
{
    // Dense same-tick bursts plus sparse far jumps, crossing many
    // window wraps; every event must run exactly once, in tick order.
    EventQueue eq;
    std::vector<Tick> fired;
    Tick t = 0;
    std::vector<Tick> expect;
    for (int i = 0; i < 200; ++i) {
        t += static_cast<Tick>((i % 7 == 0) ? 9001 : i % 5);
        expect.push_back(t);
        eq.schedule(t, [&fired, &eq]() {
            fired.push_back(eq.curTick());
        });
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, expect);
    EXPECT_EQ(eq.executed(), 200u);
}

TEST(EventQueue, RunUntilResumesMidBucket)
{
    // Stop mid-way through a same-tick bucket, then resume: the
    // unexecuted suffix must still run, exactly once, in order.
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 6; ++i)
        eq.schedule(7, [&, i]() { order.push_back(i); });
    EXPECT_TRUE(eq.runUntil([&]() { return order.size() == 2; }));
    EXPECT_EQ(eq.curTick(), 7u);
    EXPECT_EQ(eq.pending(), 4u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueue, MaxTickDoesNotRewindClock)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(eq.curTick(), 100u);
    // A bound in the past must not move time backwards.
    eq.schedule(200, []() {});
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(eq.curTick(), 100u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(eq.curTick(), 200u);
}

TEST(EventQueue, HandlerSchedulesIntoCurrentAndFarTicks)
{
    EventQueue eq;
    std::vector<char> order;
    eq.schedule(10, [&]() {
        order.push_back('x');
        // Same-tick append lands at the tail of the live bucket...
        eq.schedule(10, [&]() { order.push_back('y'); });
        // ...and a far event takes the overflow path.
        eq.scheduleIn(100000, [&]() { order.push_back('z'); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<char>{'x', 'y', 'z'}));
    EXPECT_EQ(eq.curTick(), 100010u);
}

TEST(EventQueue, ResumableAfterHandlerThrows)
{
    // A throwing handler must leave the queue consistent: the
    // unexecuted same-tick suffix and later events still run, and no
    // moved-from handler is ever re-invoked.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(0); });
    eq.schedule(5, [&]() { throw std::runtime_error("boom"); });
    eq.schedule(5, [&]() { order.push_back(2); });
    eq.schedule(9, [&]() { order.push_back(3); });
    EXPECT_THROW(eq.run(), std::runtime_error);
    EXPECT_EQ(eq.curTick(), 5u);
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3}));
    EXPECT_EQ(eq.executed(), 4u);
}

// --- Timers: the cancellable/reschedulable pooled handles that the
// reissue-timeout and arbiter-broadcast paths are built on.

TEST(Timer, FiresOnceAtDeadline)
{
    EventQueue eq;
    int fired = 0;
    Timer t;
    t.schedule(eq, 25, [&]() { fired += 1; });
    EXPECT_TRUE(t.pending());
    EXPECT_EQ(t.deadline(), 25u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(t.pending());
    EXPECT_EQ(eq.curTick(), 25u);
    EXPECT_EQ(eq.dispatched(), 1u);
}

TEST(Timer, CancelBeforeFire)
{
    EventQueue eq;
    int fired = 0;
    Timer t;
    t.scheduleIn(eq, 10, [&]() { ++fired; });
    t.cancel();
    EXPECT_FALSE(t.pending());
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.cancelled(), 1u);
    // The superseded proxy drained as a record but dispatched nothing.
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_EQ(eq.dispatched(), 0u);
}

TEST(Timer, CancelReleasesCapturesImmediately)
{
    EventQueue eq;
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    Timer t;
    t.schedule(eq, 5, [token]() {});
    token.reset();
    EXPECT_FALSE(watch.expired());
    t.cancel();
    EXPECT_TRUE(watch.expired());   // destroyed at cancel, not drain
    eq.run();
}

TEST(Timer, RescheduleMovesDeadlineKeepingCallback)
{
    EventQueue eq;
    std::vector<Tick> fired;
    Timer t;
    t.schedule(eq, 10, [&]() { fired.push_back(eq.curTick()); });
    t.reschedule(50);
    EXPECT_EQ(t.deadline(), 50u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, (std::vector<Tick>{50}));
    EXPECT_EQ(eq.curTick(), 50u);

    // Rescheduling EARLIER works too: the late proxy fires stale.
    t.schedule(eq, eq.curTick() + 100, [&]() {
        fired.push_back(eq.curTick());
    });
    t.reschedule(eq.curTick() + 10);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[1], 60u);
}

TEST(Timer, StaleTimerNeverDispatches)
{
    // A cancelled deadline must never reach the callback even though
    // its proxy record still drains through the ring — and a slot
    // recycled to a NEW timer must not resurrect the old deadline.
    EventQueue eq;
    int old_fired = 0, new_fired = 0;
    {
        Timer victim;
        victim.schedule(eq, 10, [&]() { ++old_fired; });
    }   // destroyed while pending: cancels and frees its slot
    Timer fresh;   // recycles the released slot
    fresh.schedule(eq, 10, [&]() { ++new_fired; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(old_fired, 0);
    EXPECT_EQ(new_fired, 1);
    EXPECT_EQ(eq.executed(), 2u);     // both proxies drained
    EXPECT_EQ(eq.dispatched(), 1u);   // only the live one dispatched
}

TEST(Timer, HandleReuseAcrossManyArms)
{
    EventQueue eq;
    int fired = 0;
    Timer t;
    for (int i = 0; i < 5; ++i) {
        t.scheduleIn(eq, 7, [&]() { ++fired; });
        EXPECT_TRUE(eq.run());
    }
    EXPECT_EQ(fired, 5);

    // Re-arm + cancel churn on the same handle.
    for (int i = 0; i < 5; ++i) {
        t.scheduleIn(eq, 7, [&]() { ++fired; });
        t.cancel();
    }
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 5);
}

TEST(Timer, CallbackMayRearmItsOwnTimer)
{
    // The reissue-timeout shape: the callback re-arms the very timer
    // that is firing.
    EventQueue eq;
    int fired = 0;
    Timer t;
    std::function<void()> arm = [&]() {
        t.scheduleIn(eq, 10, [&]() {
            ++fired;
            if (fired < 3)
                arm();
        });
    };
    arm();
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(Timer, CancelAfterQueueResetIsSafeAndHandleReusable)
{
    EventQueue eq;
    int fired = 0;
    Timer t;
    t.schedule(eq, 100, [&]() { ++fired; });
    eq.reset();   // disarms every timer, drops every event
    EXPECT_FALSE(t.pending());
    t.cancel();   // must be a harmless no-op
    EXPECT_TRUE(eq.empty());

    // The handle (and its slot) survive the reset and re-arm cleanly.
    t.schedule(eq, 5, [&]() { fired += 10; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 10);
}

TEST(Timer, QueueResetDestroysArmedCaptures)
{
    EventQueue eq;
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    Timer t;
    t.schedule(eq, 50, [token]() {});
    token.reset();
    EXPECT_FALSE(watch.expired());
    eq.reset();
    EXPECT_TRUE(watch.expired());
}

TEST(Timer, MoveTransfersOwnership)
{
    EventQueue eq;
    int fired = 0;
    Timer a;
    a.schedule(eq, 10, [&]() { ++fired; });
    Timer b = std::move(a);
    EXPECT_TRUE(b.pending());
    b.cancel();
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 0);

    // Move-assign over a pending timer cancels the overwritten one.
    Timer c, d;
    c.schedule(eq, eq.curTick() + 10, [&]() { ++fired; });
    d.schedule(eq, eq.curTick() + 10, [&]() { fired += 100; });
    d = std::move(c);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 1);   // c's callback ran; d's was cancelled
}

TEST(Timer, CountersTrackScheduleDispatchCancel)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&]() { ++fired; });
    Timer t;
    t.schedule(eq, 10, [&]() { ++fired; });   // fires
    Timer u;
    u.schedule(eq, 15, [&]() { ++fired; });   // cancelled below
    u.cancel();
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.scheduled(), 3u);
    EXPECT_EQ(eq.executed(), 3u);
    EXPECT_EQ(eq.dispatched(), 2u);
    EXPECT_EQ(eq.cancelled(), 1u);
    eq.reset();
    EXPECT_EQ(eq.scheduled(), 0u);
    EXPECT_EQ(eq.dispatched(), 0u);
    EXPECT_EQ(eq.cancelled(), 0u);
}

TEST(Timer, SteadyStateTimerChurnIsAllocationFree)
{
    // Timer arm/fire/cancel/reschedule churn must stay allocation-free
    // once the slot pool and ring are warm, like plain scheduling.
    EventQueue eq;
    std::vector<Timer> timers(32);
    std::uint64_t fired = 0;
    auto round = [&]() {
        for (int rep = 0; rep < 8; ++rep) {
            for (std::size_t i = 0; i < timers.size(); ++i) {
                timers[i].scheduleIn(eq,
                                     static_cast<Tick>(1 + (i % 13)),
                                     [&fired]() { ++fired; });
            }
            for (std::size_t i = 0; i < timers.size(); i += 3)
                timers[i].cancel();
            for (std::size_t i = 1; i < timers.size(); i += 3)
                timers[i].rescheduleIn(20);
            eq.run();
            // Fresh handles each rep exercise slot recycling.
            Timer scratch;
            scratch.scheduleIn(eq, 5, [&fired]() { ++fired; });
            eq.run();
        }
    };
    round();   // warm the pool, ring, and free list
    eq.reset();
    round();
    eq.reset();
    const std::uint64_t before = allocCount();
    round();
    eq.reset();
    round();
    EXPECT_EQ(allocCount(), before)
        << "timer churn allocated on a warmed queue";
    EXPECT_GT(fired, 0u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(9);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++hits[rng.below(8)];
    for (int h : hits) {
        EXPECT_GT(h, 700);   // roughly uniform
        EXPECT_LT(h, 1300);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsfraction)
{
    Rng rng(13);
    int yes = 0;
    for (int i = 0; i < 10000; ++i)
        yes += rng.chance(0.25);
    EXPECT_NEAR(yes / 10000.0, 0.25, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(17);
    double sum = 0;
    const double p = 0.1;
    for (int i = 0; i < 20000; ++i)
        sum += static_cast<double>(rng.geometric(p));
    EXPECT_NEAR(sum / 20000.0, 1.0 / p, 0.5);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(5);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += c1.next() == c2.next();
    EXPECT_LT(same, 2);
}

TEST(RunningStat, MeanAndStddev)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Ewma, TracksRecentValues)
{
    Ewma e(0.5);
    EXPECT_FALSE(e.primed());
    e.add(100.0);
    EXPECT_TRUE(e.primed());
    EXPECT_DOUBLE_EQ(e.value(), 100.0);   // first sample primes
    e.add(200.0);
    EXPECT_DOUBLE_EQ(e.value(), 150.0);
    e.add(200.0);
    EXPECT_DOUBLE_EQ(e.value(), 175.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4);
    h.add(5.0);
    h.add(15.0);
    h.add(35.0);
    h.add(1000.0);   // overflow bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.buckets()[4], 1u);
}

TEST(Strformat, FormatsLikePrintf)
{
    EXPECT_EQ(strformat("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(strformat("%04x", 0xab), "00ab");
    EXPECT_EQ(strformat("%s", ""), "");
}

} // namespace
} // namespace tokensim
