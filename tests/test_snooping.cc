/**
 * @file
 * Protocol tests for traditional MOSI snooping on the totally-ordered
 * tree: state transitions, the memory owner-bit mechanism, migratory
 * optimization, ordered races, writeback races, and the configuration
 * error for unordered interconnects (Figure 4a's "not applicable").
 */

#include <gtest/gtest.h>

#include "proto/snooping/snooping.hh"
#include "proto_test_util.hh"

namespace tokensim {
namespace {

using testutil::ProtoDriver;
using testutil::smallConfig;

SnoopCache &
scache(ProtoDriver &d, NodeId n)
{
    return dynamic_cast<SnoopCache &>(d.sys->cache(n));
}

SnoopMemory &
smem(ProtoDriver &d, NodeId n)
{
    return dynamic_cast<SnoopMemory &>(d.sys->memory(n));
}

SystemConfig
snoopConfig(int nodes = 4)
{
    return smallConfig(ProtocolKind::snooping, "tree", nodes);
}

constexpr Addr kBlock = 0x400;   // home 0 on 4 nodes

TEST(Snooping, RejectsUnorderedInterconnect)
{
    SystemConfig cfg = smallConfig(ProtocolKind::snooping, "torus");
    EXPECT_THROW(System{cfg}, std::invalid_argument);
}

TEST(Snooping, ColdLoadFromMemory)
{
    ProtoDriver d(snoopConfig());
    const ProcResponse r = d.load(1, kBlock);
    EXPECT_TRUE(r.wasMiss);
    EXPECT_FALSE(r.cacheToCache);
    EXPECT_EQ(r.value, kBlock);
    EXPECT_EQ(scache(d, 1).state(kBlock), SnoopState::S);
    EXPECT_TRUE(smem(d, 0).memoryOwns(kBlock));
}

TEST(Snooping, StoreMakesModifiedAndClearsMemoryOwner)
{
    ProtoDriver d(snoopConfig());
    d.store(2, kBlock, 0x2222);
    EXPECT_EQ(scache(d, 2).state(kBlock), SnoopState::M);
    EXPECT_FALSE(smem(d, 0).memoryOwns(kBlock));
}

TEST(Snooping, LoadHitAndStoreHit)
{
    ProtoDriver d(snoopConfig());
    d.store(1, kBlock, 0x1);
    EXPECT_FALSE(d.load(1, kBlock).wasMiss);
    EXPECT_FALSE(d.store(1, kBlock, 0x2).wasMiss);
    EXPECT_EQ(d.load(1, kBlock).value, 0x2u);
}

TEST(Snooping, MigratoryPredictorMakesLoadsExclusive)
{
    // Snooping's migratory optimization is requester-side (see
    // snooping.hh): a node that once missed on a store to a block
    // fetches it exclusively on later loads, turning each migratory
    // section into a single miss.
    ProtoDriver d(snoopConfig());
    d.store(0, kBlock, 0xaaaa);
    // Node 3's first section: load shared (predictor untrained),
    // then an upgrade miss for the store — and the store miss trains
    // node 3's predictor.
    const ProcResponse r = d.load(3, kBlock);
    EXPECT_TRUE(r.cacheToCache);
    EXPECT_EQ(r.value, 0xaaaau);
    EXPECT_EQ(scache(d, 3).state(kBlock), SnoopState::S);
    EXPECT_TRUE(d.store(3, kBlock, 0xbbbb).wasMiss);

    // Node 0 runs another section: its store miss on this block
    // already trained its predictor, so the load comes back M and
    // the store hits — one miss for the whole section.
    const ProcResponse r0 = d.load(0, kBlock);
    EXPECT_EQ(r0.value, 0xbbbbu);
    EXPECT_EQ(scache(d, 0).state(kBlock), SnoopState::M);
    EXPECT_FALSE(d.store(0, kBlock, 0xcccc).wasMiss);
    EXPECT_EQ(scache(d, 3).state(kBlock), SnoopState::I);
}

TEST(Snooping, OwnerSuppliesSharedDataWithoutMigratory)
{
    SystemConfig cfg = snoopConfig();
    cfg.proto.migratoryOpt = false;
    ProtoDriver d(cfg);
    d.store(0, kBlock, 0xaaaa);
    const ProcResponse r = d.load(3, kBlock);
    EXPECT_TRUE(r.cacheToCache);
    EXPECT_EQ(scache(d, 0).state(kBlock), SnoopState::O);
    EXPECT_EQ(scache(d, 3).state(kBlock), SnoopState::S);
    // A second reader is served by the O-state owner, not memory.
    const ProcResponse r2 = d.load(1, kBlock);
    EXPECT_TRUE(r2.cacheToCache);
    EXPECT_EQ(r2.value, 0xaaaau);
    EXPECT_FALSE(smem(d, 0).memoryOwns(kBlock));
}

TEST(Snooping, GetMInvalidatesSharers)
{
    SystemConfig cfg = snoopConfig();
    cfg.proto.migratoryOpt = false;
    ProtoDriver d(cfg);
    for (NodeId n = 0; n < 4; ++n)
        d.load(n, kBlock);
    d.store(2, kBlock, 0x5555);
    for (NodeId n = 0; n < 4; ++n) {
        if (n != 2)
            EXPECT_EQ(scache(d, n).state(kBlock), SnoopState::I);
    }
    EXPECT_EQ(d.load(1, kBlock).value, 0x5555u);
}

TEST(Snooping, RacingStoresSerializeThroughRoot)
{
    ProtoDriver d(snoopConfig());
    for (NodeId n = 0; n < 4; ++n)
        d.issue(n, MemOp::store, kBlock, 0x100 + n);
    for (NodeId n = 0; n < 4; ++n)
        ASSERT_TRUE(d.runUntilCompletions(n, 1)) << "node " << n;
    d.drain();
    int modified = 0;
    for (NodeId n = 0; n < 4; ++n)
        modified += scache(d, n).state(kBlock) == SnoopState::M;
    EXPECT_EQ(modified, 1);
    const ProcResponse r = d.load(0, kBlock);
    EXPECT_GE(r.value, 0x100u);
    EXPECT_LE(r.value, 0x103u);
}

TEST(Snooping, RacingLoadAndStoreResolveByOrder)
{
    // The Section-2 example race, resolved by the total order.
    ProtoDriver d(snoopConfig());
    d.issue(0, MemOp::store, kBlock, 0xd00d);
    d.issue(1, MemOp::load, kBlock);
    ASSERT_TRUE(d.runUntilCompletions(0, 1));
    ASSERT_TRUE(d.runUntilCompletions(1, 1));
    const ProcResponse &r = d.completions[1][0];
    EXPECT_TRUE(r.value == kBlock || r.value == 0xd00d);
    d.drain();
}

TEST(Snooping, EvictionWritesBackThroughOrderedPutM)
{
    SystemConfig cfg = snoopConfig();
    cfg.l2 = CacheParams{512, 2, 64, nsToTicks(6)};
    ProtoDriver d(cfg);
    d.store(1, 0x000, 0x111);
    d.store(1, 0x100, 0x222);
    d.store(1, 0x200, 0x333);   // evicts 0x000 (M) -> PutM + data
    d.drain();
    EXPECT_EQ(scache(d, 1).state(0x000), SnoopState::I);
    EXPECT_TRUE(scache(d, 1).quiescent());
    EXPECT_TRUE(smem(d, 0).memoryOwns(0x000));
    EXPECT_EQ(smem(d, 0).peekData(0x000), 0x111u);
    EXPECT_EQ(d.load(2, 0x000).value, 0x111u);
}

TEST(Snooping, RequestDuringWritebackIsServedByMemoryAfterData)
{
    // A load races an eviction: the PutM is ordered first, memory
    // queues the request until the writeback data arrives.
    SystemConfig cfg = snoopConfig();
    cfg.l2 = CacheParams{512, 2, 64, nsToTicks(6)};
    ProtoDriver d(cfg);
    d.store(1, 0x000, 0x111);
    d.store(1, 0x100, 0x222);
    // Evict 0x000 and immediately request it from another node.
    d.issue(1, MemOp::store, 0x200, 0x333);
    d.issue(3, MemOp::load, 0x000);
    ASSERT_TRUE(d.runUntilCompletions(3, 1));
    EXPECT_EQ(d.completions[3][0].value, 0x111u);
    d.drain();
    EXPECT_TRUE(scache(d, 1).quiescent());
}

TEST(Snooping, SharedEvictionIsSilent)
{
    SystemConfig cfg = snoopConfig();
    cfg.l2 = CacheParams{512, 2, 64, nsToTicks(6)};
    cfg.proto.migratoryOpt = false;
    ProtoDriver d(cfg);
    d.store(0, 0x000, 0x9);    // node 0 owns
    d.load(1, 0x000);          // node 1 shared
    const auto before = d.sys->net().traffic().messagesOf(
        MsgClass::request);
    d.load(1, 0x100);
    d.load(1, 0x200);          // evicts 0x000 from node 1 (S): silent
    d.drain();
    EXPECT_EQ(scache(d, 1).state(0x000), SnoopState::I);
    // Only the two loads' ordered requests were added; no PutM.
    EXPECT_EQ(d.sys->net().traffic().messagesOf(MsgClass::request),
              before + 2);
}

TEST(Snooping, OwnershipChainWithValues)
{
    ProtoDriver d(snoopConfig());
    std::uint64_t expect = kBlock;
    for (int round = 0; round < 3; ++round) {
        for (NodeId n = 0; n < 4; ++n) {
            EXPECT_EQ(d.load(n, kBlock).value, expect);
            expect = 0x1000u * (round + 1) + n;
            d.store(n, kBlock, expect);
        }
    }
    d.drain();
}

TEST(Snooping, AllBroadcastsUseTheOrderedPath)
{
    ProtoDriver d(snoopConfig());
    d.load(1, kBlock);
    d.store(2, kBlock, 1);
    d.drain();
    // Both requests crossed the root: each ordered broadcast counts
    // up-links (2) and the full down-tree (2 root->out + 4 out->proc
    // for 4 nodes with fanout 4: 1 group => 1 + 4... computed from
    // topology instead:
    const auto &topo = d.sys->net().topology();
    const std::size_t expected_links =
        topo.routeToRoot(1).size() + topo.downTree().size() +
        topo.routeToRoot(2).size() + topo.downTree().size();
    EXPECT_EQ(d.sys->net().traffic().byteLinksOf(MsgClass::request),
              8u * expected_links);
}

} // namespace
} // namespace tokensim
