/**
 * @file
 * Full-system integration tests: every protocol x topology x workload
 * combination runs to completion with sane aggregate results, runs are
 * bit-deterministic per seed, and the qualitative relationships the
 * paper reports (latency orderings, traffic orderings) hold on small
 * configurations.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.hh"
#include "harness/system.hh"

namespace tokensim {
namespace {

SystemConfig
baseConfig(ProtocolKind proto, const std::string &topo,
           const std::string &workload)
{
    SystemConfig cfg;
    cfg.numNodes = 8;
    cfg.topology = topo;
    cfg.protocol = proto;
    cfg.workload = workload;
    cfg.opsPerProcessor = 1500;
    cfg.attachAuditor = isTokenProtocol(proto);
    cfg.seed = 12345;
    return cfg;
}

using Combo = std::tuple<ProtocolKind, const char *, const char *>;

class SystemCombo : public ::testing::TestWithParam<Combo>
{
};

TEST_P(SystemCombo, RunsToCompletionWithSaneResults)
{
    const auto [proto, topo, workload] = GetParam();
    SystemConfig cfg = baseConfig(proto, topo, workload);
    System sys(cfg);
    sys.run();
    const System::Results r = sys.results();

    EXPECT_EQ(r.ops(), cfg.opsPerProcessor *
                           static_cast<std::uint64_t>(cfg.numNodes));
    EXPECT_GT(r.transactions(), 0u);
    EXPECT_GT(r.runtimeTicks(), 0u);
    EXPECT_GT(r.misses(), 0u);
    EXPECT_GT(r.totalLinkBytes(), 0u);
    EXPECT_GT(r.cyclesPerTransaction(), 0.0);
    // Reissue buckets partition misses.
    EXPECT_EQ(r.misses(),
              r.missesNotReissued() + r.missesReissuedOnce() +
                  r.missesReissuedMore() + r.missesPersistent());
    // The miss-latency stat and histogram see every completed miss.
    EXPECT_EQ(r.missLatency().count(), r.misses());
    const LogHistogram *hist =
        r.metrics.histogram("miss_latency_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->total(), r.misses());
    if (!isTokenProtocol(proto)) {
        EXPECT_EQ(r.missesReissuedOnce(), 0u);
        EXPECT_EQ(r.missesPersistent(), 0u);
    }
    if (sys.auditor()) {
        std::string err;
        EXPECT_TRUE(sys.auditor()->auditAll(&err)) << err;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, SystemCombo,
    ::testing::Values(
        Combo{ProtocolKind::snooping, "tree", "oltp"},
        Combo{ProtocolKind::directory, "torus", "oltp"},
        Combo{ProtocolKind::hammer, "torus", "oltp"},
        Combo{ProtocolKind::tokenB, "torus", "oltp"},
        Combo{ProtocolKind::tokenB, "tree", "apache"},
        Combo{ProtocolKind::tokenB, "torus", "specjbb"},
        Combo{ProtocolKind::tokenD, "torus", "oltp"},
        Combo{ProtocolKind::tokenM, "torus", "apache"},
        Combo{ProtocolKind::directory, "tree", "specjbb"},
        Combo{ProtocolKind::hammer, "tree", "apache"},
        Combo{ProtocolKind::tokenB, "torus", "uniform"},
        Combo{ProtocolKind::directory, "torus", "uniform"},
        Combo{ProtocolKind::tokenB, "torus", "private"},
        Combo{ProtocolKind::tokenB, "torus", "producer-consumer"},
        Combo{ProtocolKind::directory, "torus", "producer-consumer"},
        Combo{ProtocolKind::tokenB, "torus", "lock-ping"},
        Combo{ProtocolKind::hammer, "torus", "lock-ping"}),
    [](const ::testing::TestParamInfo<Combo> &info) {
        std::string name =
            std::string(protocolName(std::get<0>(info.param))) + "_" +
            std::get<1>(info.param) + "_" + std::get<2>(info.param);
        // gtest names allow [A-Za-z0-9_] only ("producer-consumer").
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(SystemDeterminism, SameSeedSameResult)
{
    for (ProtocolKind proto : {ProtocolKind::tokenB,
                               ProtocolKind::directory,
                               ProtocolKind::hammer}) {
        SystemConfig cfg = baseConfig(proto, "torus", "oltp");
        cfg.opsPerProcessor = 800;
        System a(cfg), b(cfg);
        a.run();
        b.run();
        EXPECT_EQ(a.results().runtimeTicks(),
                  b.results().runtimeTicks())
            << protocolName(proto);
        EXPECT_EQ(a.results().totalLinkBytes(),
                  b.results().totalLinkBytes());
        EXPECT_EQ(a.results().misses(), b.results().misses());
        EXPECT_TRUE(a.results().metrics == b.results().metrics)
            << protocolName(proto);
    }
}

TEST(SystemDeterminism, DifferentSeedDifferentInterleaving)
{
    SystemConfig cfg = baseConfig(ProtocolKind::tokenB, "torus",
                                  "oltp");
    cfg.opsPerProcessor = 800;
    System a(cfg);
    cfg.seed = 999;
    System b(cfg);
    a.run();
    b.run();
    EXPECT_NE(a.results().runtimeTicks(), b.results().runtimeTicks());
}

TEST(SystemShape, TokenBBeatsDirectoryOnCacheToCacheWorkload)
{
    // The headline claim on a sharing-heavy workload: avoiding the
    // home indirection makes TokenB faster than Directory.
    SystemConfig cfg = baseConfig(ProtocolKind::tokenB, "torus",
                                  "uniform");
    cfg.workload.uniformBlocks = 128;
    cfg.opsPerProcessor = 2000;
    System token(cfg);
    token.run();
    cfg.protocol = ProtocolKind::directory;
    cfg.attachAuditor = false;
    System dir(cfg);
    dir.run();
    EXPECT_LT(token.results().runtimeTicks(),
              dir.results().runtimeTicks());
}

TEST(SystemShape, DirectoryUsesLessTrafficThanTokenB)
{
    SystemConfig cfg = baseConfig(ProtocolKind::tokenB, "torus",
                                  "oltp");
    cfg.opsPerProcessor = 1500;
    System token(cfg);
    token.run();
    cfg.protocol = ProtocolKind::directory;
    cfg.attachAuditor = false;
    System dir(cfg);
    dir.run();
    const double token_bpm = token.results().bytesPerMiss();
    const double dir_bpm = dir.results().bytesPerMiss();
    EXPECT_LT(dir_bpm, token_bpm);
}

TEST(SystemShape, HammerUsesMostTraffic)
{
    SystemConfig cfg = baseConfig(ProtocolKind::hammer, "torus",
                                  "oltp");
    cfg.opsPerProcessor = 1500;
    System hammer(cfg);
    hammer.run();
    cfg.protocol = ProtocolKind::tokenB;
    cfg.attachAuditor = true;
    System token(cfg);
    token.run();
    EXPECT_GT(hammer.results().bytesPerMiss(),
              token.results().bytesPerMiss());
}

TEST(SystemShape, ReissuesAreRareOnCommercialWorkloads)
{
    // Table 2's premise: races are rare, so ~97% of misses complete
    // on the first transient request.
    SystemConfig cfg = baseConfig(ProtocolKind::tokenB, "torus",
                                  "oltp");
    cfg.opsPerProcessor = 3000;
    System sys(cfg);
    sys.run();
    const System::Results r = sys.results();
    const double not_reissued =
        static_cast<double>(r.missesNotReissued()) /
        static_cast<double>(r.misses());
    EXPECT_GT(not_reissued, 0.90);
}

TEST(Experiment, MultiSeedAveragingFillsAllFields)
{
    SystemConfig cfg = baseConfig(ProtocolKind::tokenB, "torus",
                                  "specjbb");
    cfg.opsPerProcessor = 600;
    const ExperimentResult r = runExperiment(cfg, 2, "tb");
    EXPECT_EQ(r.label, "tb");
    EXPECT_GT(r.cyclesPerTransaction, 0.0);
    EXPECT_GT(r.bytesPerMiss, 0.0);
    EXPECT_GT(r.misses, 0u);
    EXPECT_NEAR(r.pctNotReissued + r.pctReissuedOnce +
                    r.pctReissuedMore + r.pctPersistent,
                100.0, 1e-6);
}

TEST(SystemConfigErrors, RejectsBadWorkloadName)
{
    SystemConfig cfg = baseConfig(ProtocolKind::tokenB, "torus",
                                  "doom3");
    EXPECT_THROW(System{cfg}, std::invalid_argument);
}

} // namespace
} // namespace tokensim
