/**
 * @file
 * Timing-model regression tests: the isolated latency of each miss
 * scenario, derived from Table 1 (link 15 ns, control serialization
 * 2.5 ns, data 22.5 ns, controller 6 ns, L2 6 ns, DRAM 80 ns), pinned
 * so model changes that move the paper-relevant latencies are caught;
 * plus network-level ordering/conservation properties under random
 * storms.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "net/network.hh"
#include "proto_test_util.hh"
#include "sim/random.hh"

namespace tokensim {
namespace {

using testutil::ProtoDriver;
using testutil::smallConfig;

Tick
latencyOf(const ProcResponse &r)
{
    return r.completedAt - r.issuedAt;
}

// 8-node 4x2 torus; block 0x400 homed at node 0.
constexpr Addr kBlock = 0x400;

SystemConfig
timingConfig(ProtocolKind proto)
{
    return smallConfig(proto, "torus", 8);
}

TEST(Timing, TokenBColdLoadFromMemory)
{
    // request broadcast reaches home (1 hop from node 1) + ctrl +
    // DRAM + data response (1 hop) — about 147 ns on this layout.
    ProtoDriver d(timingConfig(ProtocolKind::tokenB));
    const Tick lat = latencyOf(d.load(1, kBlock));
    EXPECT_NEAR(ticksToNsF(lat), 147.0, 5.0);
}

TEST(Timing, TokenBCacheToCacheIsDirect)
{
    // Two network traversals + responder lookup, no home indirection:
    // ~103 ns — the paper's core latency argument.
    ProtoDriver d(timingConfig(ProtocolKind::tokenB));
    d.store(1, kBlock, 1);
    const Tick lat = latencyOf(d.load(2, kBlock));
    EXPECT_NEAR(ticksToNsF(lat), 103.0, 8.0);
}

TEST(Timing, DirectoryCacheToCachePaysIndirectionAndLookup)
{
    // Request to home + DRAM directory lookup + forward + response:
    // ~192 ns, nearly 2x TokenB's direct transfer.
    ProtoDriver d(timingConfig(ProtocolKind::directory));
    d.store(1, kBlock, 1);
    const Tick lat = latencyOf(d.load(2, kBlock));
    EXPECT_NEAR(ticksToNsF(lat), 192.0, 10.0);
    // And the relation itself:
    ProtoDriver t(timingConfig(ProtocolKind::tokenB));
    t.store(1, kBlock, 1);
    EXPECT_LT(ticksToNsF(latencyOf(t.load(2, kBlock))) * 1.5,
              ticksToNsF(lat));
}

TEST(Timing, PerfectDirectoryRemovesTheLookup)
{
    SystemConfig cfg = timingConfig(ProtocolKind::directory);
    cfg.proto.perfectDirectory = true;
    ProtoDriver d(cfg);
    d.store(1, kBlock, 1);
    const Tick lat = latencyOf(d.load(2, kBlock));
    EXPECT_NEAR(ticksToNsF(lat), 112.0, 10.0);
}

TEST(Timing, HammerWaitsForAllResponses)
{
    // Hammer's cache-to-cache: home indirection + full probe/ack
    // round, slower than TokenB but without the directory lookup.
    ProtoDriver d(timingConfig(ProtocolKind::hammer));
    d.store(1, kBlock, 1);
    const Tick ham = latencyOf(d.load(2, kBlock));
    ProtoDriver t(timingConfig(ProtocolKind::tokenB));
    t.store(1, kBlock, 1);
    const Tick tok = latencyOf(t.load(2, kBlock));
    EXPECT_GT(ham, tok);
}

TEST(Timing, SnoopingPaysFourTreeCrossingsEachWay)
{
    // Ordered request: 4 crossings + root store-and-forward; data
    // response: 4 crossings back. All misses pay the tree.
    ProtoDriver d(smallConfig(ProtocolKind::snooping, "tree", 8));
    d.store(1, kBlock, 1);
    const Tick lat = latencyOf(d.load(2, kBlock));
    // >= 8 link crossings (120 ns) + serialization + lookups.
    EXPECT_GT(ticksToNsF(lat), 140.0);
    EXPECT_LT(ticksToNsF(lat), 220.0);
}

TEST(Timing, L2HitCostsL2Latency)
{
    ProtoDriver d(timingConfig(ProtocolKind::tokenB));
    d.load(1, kBlock);
    const Tick lat = latencyOf(d.load(1, kBlock));
    EXPECT_EQ(lat, nsToTicks(6));
}

TEST(Timing, UnlimitedBandwidthLowersLatencyFloor)
{
    SystemConfig cfg = timingConfig(ProtocolKind::tokenB);
    cfg.net.unlimitedBandwidth = true;
    ProtoDriver d(cfg);
    d.store(1, kBlock, 1);
    const Tick inf_bw = latencyOf(d.load(2, kBlock));

    ProtoDriver l(timingConfig(ProtocolKind::tokenB));
    l.store(1, kBlock, 1);
    const Tick limited = latencyOf(l.load(2, kBlock));
    // The difference is the serialization of request + data.
    EXPECT_GT(limited, inf_bw);
    EXPECT_NEAR(ticksToNsF(limited - inf_bw), 25.0, 8.0);
}

// ---------------------------------------------------------------------
// Network ordering / conservation properties under random storms.
// ---------------------------------------------------------------------

class RecordingSink : public NetworkEndpoint
{
  public:
    explicit RecordingSink(EventQueue &eq) : eq_(eq) {}

    void
    deliver(const Message &msg) override
    {
        received.push_back(msg);
        times.push_back(eq_.curTick());
    }

    std::vector<Message> received;
    std::vector<Tick> times;

  private:
    EventQueue &eq_;
};

TEST(NetworkProperty, EveryUnicastDeliveredExactlyOnce)
{
    EventQueue eq;
    Network net(eq,
                std::unique_ptr<Topology>(makeTopology("torus", 16)),
                NetworkParams{});
    std::vector<std::unique_ptr<RecordingSink>> sinks;
    for (int i = 0; i < 16; ++i) {
        sinks.push_back(std::make_unique<RecordingSink>(eq));
        net.attach(static_cast<NodeId>(i), sinks.back().get());
    }
    Rng rng(99);
    const int n = 500;
    std::map<std::uint64_t, int> expect;   // seq tag -> dest
    for (int i = 0; i < n; ++i) {
        Message m;
        m.type = MsgType::data;
        m.cls = MsgClass::data;
        m.hasData = rng.chance(0.5);
        m.src = static_cast<NodeId>(rng.below(16));
        m.dest = static_cast<NodeId>(rng.below(16));
        m.addr = 0x40 * rng.below(64);
        m.seq = static_cast<std::uint64_t>(i);   // tag for tracking
        eq.schedule(rng.below(5000), [&net, m]() mutable {
            net.unicast(m);
        });
        expect[static_cast<std::uint64_t>(i)] =
            static_cast<int>(m.dest);
    }
    eq.run();
    std::map<std::uint64_t, int> got;
    for (int i = 0; i < 16; ++i) {
        for (const Message &m : sinks[static_cast<std::size_t>(i)]
                 ->received) {
            EXPECT_EQ(got.count(m.seq), 0u) << "duplicate delivery";
            got[m.seq] = i;
        }
    }
    EXPECT_EQ(got, expect);
}

TEST(NetworkProperty, SameSourceDestPairStaysFifo)
{
    // Deterministic routes + FIFO links => per-pair order preserved,
    // which the persistent-request machinery relies on.
    EventQueue eq;
    Network net(eq,
                std::unique_ptr<Topology>(makeTopology("torus", 8)),
                NetworkParams{});
    std::vector<std::unique_ptr<RecordingSink>> sinks;
    for (int i = 0; i < 8; ++i) {
        sinks.push_back(std::make_unique<RecordingSink>(eq));
        net.attach(static_cast<NodeId>(i), sinks.back().get());
    }
    Rng rng(7);
    Tick when = 0;
    for (int i = 0; i < 400; ++i) {
        Message m;
        m.type = MsgType::ack;
        m.cls = MsgClass::nonData;
        m.hasData = rng.chance(0.3);   // mixed sizes stress overtaking
        m.src = 0;
        m.dest = 5;
        m.seq = static_cast<std::uint64_t>(i);
        when += rng.range(1, 40);      // strictly increasing sends
        eq.schedule(when, [&net, m]() mutable { net.unicast(m); });
    }
    eq.run();
    const auto &rx = sinks[5]->received;
    ASSERT_EQ(rx.size(), 400u);
    for (std::size_t i = 1; i < rx.size(); ++i)
        EXPECT_LT(rx[i - 1].seq, rx[i].seq);
}

TEST(NetworkProperty, BroadcastStormDeliversNTimesEach)
{
    EventQueue eq;
    Network net(eq,
                std::unique_ptr<Topology>(makeTopology("torus", 9)),
                NetworkParams{});
    std::vector<std::unique_ptr<RecordingSink>> sinks;
    for (int i = 0; i < 9; ++i) {
        sinks.push_back(std::make_unique<RecordingSink>(eq));
        net.attach(static_cast<NodeId>(i), sinks.back().get());
    }
    Rng rng(3);
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        Message m;
        m.type = MsgType::getS;
        m.cls = MsgClass::request;
        m.src = static_cast<NodeId>(rng.below(9));
        m.seq = static_cast<std::uint64_t>(i);
        eq.schedule(rng.below(20000), [&net, m]() mutable {
            net.broadcast(m);
        });
    }
    eq.run();
    std::size_t total = 0;
    for (auto &s : sinks)
        total += s->received.size();
    EXPECT_EQ(total, static_cast<std::size_t>(n) * 9u);
}

} // namespace
} // namespace tokensim
