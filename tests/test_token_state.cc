/**
 * @file
 * Unit tests for the token-counting state: the four invariants of
 * Section 3.1, the MOESI mapping, the storage encoding (2 + log2 T
 * bits), and the conservation auditor.
 */

#include <gtest/gtest.h>

#include "core/substrate.hh"
#include "core/token_state.hh"

namespace tokensim {
namespace {

TEST(TokenCount, InitialMemoryStateHoldsEverything)
{
    TokenCount tc = TokenCount::all(16);
    EXPECT_EQ(tc.count, 16);
    EXPECT_TRUE(tc.owner);
    EXPECT_TRUE(tc.valid);
    EXPECT_TRUE(tc.sane(16));
    EXPECT_TRUE(tc.canRead());
    EXPECT_TRUE(tc.canWrite(16));
    EXPECT_EQ(tc.moesi(16), TokenMoesi::modified);
}

TEST(TokenCount, MoesiMapping)
{
    // Paper: all T tokens = M; owner but not all = O; 1..T-1 without
    // owner = S; none = I.
    EXPECT_EQ((TokenCount{0, false, false}).moesi(4), TokenMoesi::invalid);
    EXPECT_EQ((TokenCount{1, false, true}).moesi(4), TokenMoesi::shared);
    EXPECT_EQ((TokenCount{2, true, true}).moesi(4), TokenMoesi::owned);
    EXPECT_EQ((TokenCount{4, true, true}).moesi(4), TokenMoesi::modified);
}

TEST(TokenCount, Invariant2WriteNeedsAllTokens)
{
    TokenCount tc{3, true, true};
    EXPECT_FALSE(tc.canWrite(4));
    tc.absorb(1, false, false);
    EXPECT_TRUE(tc.canWrite(4));
}

TEST(TokenCount, Invariant3ReadNeedsTokenAndValidData)
{
    TokenCount tc;
    EXPECT_FALSE(tc.canRead());
    // A dataless token message gives a token but no readable data.
    tc.absorb(1, false, false);
    EXPECT_EQ(tc.count, 1);
    EXPECT_FALSE(tc.canRead());
    // Data arriving with a token sets the valid bit.
    tc.absorb(1, false, true);
    EXPECT_TRUE(tc.canRead());
}

TEST(TokenCount, ReleaseClearsValidAtZero)
{
    TokenCount tc{2, false, true};
    tc.release(1, false);
    EXPECT_TRUE(tc.valid);
    tc.release(1, false);
    EXPECT_EQ(tc.count, 0);
    EXPECT_FALSE(tc.valid);
}

TEST(TokenCount, OwnerTracking)
{
    TokenCount tc{3, true, true};
    tc.release(2, true);   // owner leaves with one other token
    EXPECT_FALSE(tc.owner);
    EXPECT_EQ(tc.count, 1);
    tc.absorb(2, true, true);
    EXPECT_TRUE(tc.owner);
    EXPECT_EQ(tc.count, 3);
}

TEST(TokenCount, SanityBounds)
{
    EXPECT_FALSE((TokenCount{5, false, false}).sane(4));   // > T
    EXPECT_FALSE((TokenCount{0, true, false}).sane(4));    // owner w/o token
    EXPECT_FALSE((TokenCount{0, false, true}).sane(4));    // valid w/o token
    EXPECT_TRUE((TokenCount{0, false, false}).sane(4));
}

TEST(TokenCoding, BitsMatchPaperFormula)
{
    // valid + owner + ceil(log2 T) bits of non-owner count.
    EXPECT_EQ(TokenCoding(16).bits(), 2 + 4);
    EXPECT_EQ(TokenCoding(64).bits(), 2 + 6);
    EXPECT_EQ(TokenCoding(17).bits(), 2 + 5);
    EXPECT_EQ(TokenCoding(1).bits(), 2);
}

TEST(TokenCoding, PaperOverheadExample)
{
    // "encoding 64 tokens with 64-byte blocks adds one byte of
    // storage (1.6% overhead)".
    TokenCoding c(64);
    EXPECT_LE(c.bits(), 8);
    EXPECT_NEAR(c.overhead(64), 0.0156, 0.002);
}

TEST(TokenCoding, EncodeDecodeRoundTrips)
{
    for (int t : {1, 2, 4, 16, 17, 64}) {
        TokenCoding c(t);
        for (int count = 0; count <= t; ++count) {
            for (int owner = 0; owner <= 1; ++owner) {
                for (int valid = 0; valid <= 1; ++valid) {
                    TokenCount tc{count, owner == 1, valid == 1};
                    if (!tc.sane(t))
                        continue;
                    // Only encodable holdings: non-owner count < T.
                    if (tc.count - (tc.owner ? 1 : 0) > t - 1)
                        continue;
                    const TokenCount back = c.decode(c.encode(tc));
                    EXPECT_EQ(back.count, tc.count);
                    EXPECT_EQ(back.owner, tc.owner);
                    EXPECT_EQ(back.valid, tc.valid);
                }
            }
        }
    }
}

TEST(MakeTokenMsg, CarriesFields)
{
    Message m = makeTokenMsg(0x1000, 2, 5, Unit::cache, 3, true, true,
                             0xfeed, MsgClass::data);
    EXPECT_EQ(m.type, MsgType::tokenTransfer);
    EXPECT_EQ(m.addr, 0x1000u);
    EXPECT_EQ(m.src, 2u);
    EXPECT_EQ(m.dest, 5u);
    EXPECT_EQ(m.tokens, 3);
    EXPECT_TRUE(m.ownerToken);
    EXPECT_TRUE(m.hasData);
    EXPECT_EQ(m.data, 0xfeedu);
}

#ifndef NDEBUG
TEST(MakeTokenMsgDeathTest, Invariant4OwnerRequiresData)
{
    // Invariant #4': a message with the owner token must carry data.
    EXPECT_DEATH(makeTokenMsg(0x1000, 0, 1, Unit::cache, 1, true,
                              false, 0, MsgClass::nonData),
                 "invariant #4'");
}
#endif

// ---------------------------------------------------------------------
// TokenAuditor
// ---------------------------------------------------------------------

class FakeHolder : public TokenHolder
{
  public:
    explicit FakeHolder(std::string name) : name_(std::move(name)) {}

    int
    tokensHeld(Addr a) const override
    {
        auto it = held.find(a);
        return it == held.end() ? 0 : it->second;
    }

    bool
    ownerHeld(Addr a) const override
    {
        return owner.count(a) > 0;
    }

    std::string holderName() const override { return name_; }

    std::unordered_map<Addr, int> held;
    std::set<Addr> owner;

  private:
    std::string name_;
};

TEST(TokenAuditor, ConservedWhenAllTokensAtOneHolder)
{
    TokenAuditor aud(16, 64);
    FakeHolder mem("memory");
    mem.held[0x0] = 16;
    mem.owner.insert(0x0);
    aud.addHolder(&mem);
    aud.touch(0x0);
    std::string err;
    EXPECT_TRUE(aud.auditAll(&err)) << err;
}

TEST(TokenAuditor, DetectsLostTokens)
{
    TokenAuditor aud(16, 64);
    FakeHolder mem("memory");
    mem.held[0x0] = 15;   // one token vanished
    mem.owner.insert(0x0);
    aud.addHolder(&mem);
    aud.touch(0x0);
    std::string err;
    EXPECT_FALSE(aud.auditAll(&err));
    EXPECT_NE(err.find("15"), std::string::npos);
}

TEST(TokenAuditor, CountsInFlightTokens)
{
    TokenAuditor aud(16, 64);
    FakeHolder mem("memory");
    mem.held[0x0] = 12;
    mem.owner.insert(0x0);
    aud.addHolder(&mem);

    Message m = makeTokenMsg(0x0, 0, 1, Unit::cache, 4, false, false,
                             0, MsgClass::nonData);
    aud.onSend(m);
    EXPECT_EQ(aud.inFlight(0x0), 4);
    EXPECT_TRUE(aud.auditBlock(0x0));

    // Delivery: the tokens land at a cache.
    aud.onReceive(m);
    FakeHolder cache("cache.1");
    cache.held[0x0] = 4;
    aud.addHolder(&cache);
    EXPECT_TRUE(aud.auditBlock(0x0));
}

TEST(TokenAuditor, DetectsDuplicatedOwner)
{
    TokenAuditor aud(4, 64);
    FakeHolder a("a"), b("b");
    a.held[0x40] = 2;
    a.owner.insert(0x40);
    b.held[0x40] = 2;
    b.owner.insert(0x40);   // two owners: safety violation
    aud.addHolder(&a);
    aud.addHolder(&b);
    aud.touch(0x40);
    std::string err;
    EXPECT_FALSE(aud.auditAll(&err));
    EXPECT_NE(err.find("owner"), std::string::npos);
}

TEST(TokenAuditor, SubBlockAddressesAlias)
{
    TokenAuditor aud(4, 64);
    FakeHolder mem("memory");
    mem.held[0x40] = 4;
    mem.owner.insert(0x40);
    aud.addHolder(&mem);
    aud.touch(0x57);   // same block
    EXPECT_TRUE(aud.auditAll());
    EXPECT_EQ(aud.touchedBlocks().size(), 1u);
}

} // namespace
} // namespace tokensim
