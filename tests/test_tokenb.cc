/**
 * @file
 * Protocol tests for the Token Coherence correctness substrate and the
 * TokenB performance protocol: MOESI-equivalent transitions, the
 * migratory optimization, the Section-2 race, token conservation
 * through every scenario, evictions, and reissue bookkeeping.
 */

#include <gtest/gtest.h>

#include "core/tokenb.hh"
#include "proto_test_util.hh"

namespace tokensim {
namespace {

using testutil::ProtoDriver;
using testutil::smallConfig;

TokenBCache &
tcache(ProtoDriver &d, NodeId n)
{
    return dynamic_cast<TokenBCache &>(d.sys->cache(n));
}

TokenBMemory &
tmem(ProtoDriver &d, NodeId n)
{
    return dynamic_cast<TokenBMemory &>(d.sys->memory(n));
}

// Block 0x400 on a 4-node system: home = (0x400/64) % 4 = 0.
constexpr Addr kBlock = 0x400;

TEST(TokenB, ColdLoadGetsOneTokenFromMemory)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    const ProcResponse r = d.load(1, kBlock);
    EXPECT_TRUE(r.wasMiss);
    EXPECT_FALSE(r.cacheToCache);   // memory supplied the data
    EXPECT_EQ(r.value, kBlock);     // architectural initial pattern
    EXPECT_EQ(tcache(d, 1).moesiState(kBlock), TokenMoesi::shared);
    // Memory kept the owner token and the rest.
    const TokenCount mt = tmem(d, 0).tokenState(kBlock);
    EXPECT_EQ(mt.count, 3);
    EXPECT_TRUE(mt.owner);
    d.drain();
    d.expectConserved();
}

TEST(TokenB, ColdStoreCollectsAllTokens)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    const ProcResponse r = d.store(2, kBlock, 0x1111);
    EXPECT_TRUE(r.wasMiss);
    EXPECT_EQ(tcache(d, 2).moesiState(kBlock), TokenMoesi::modified);
    EXPECT_EQ(tmem(d, 0).tokenState(kBlock).count, 0);
    d.drain();
    d.expectConserved();
}

TEST(TokenB, LoadHitAfterFill)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    d.load(1, kBlock);
    const ProcResponse r = d.load(1, kBlock);
    EXPECT_FALSE(r.wasMiss);   // L2 hit: token + valid data present
    EXPECT_EQ(r.value, kBlock);
}

TEST(TokenB, StoreUpgradeFromShared)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    d.load(1, kBlock);
    EXPECT_EQ(tcache(d, 1).moesiState(kBlock), TokenMoesi::shared);
    const ProcResponse r = d.store(1, kBlock, 0xbeef);
    EXPECT_TRUE(r.wasMiss);    // needed the remaining tokens
    EXPECT_EQ(tcache(d, 1).moesiState(kBlock), TokenMoesi::modified);
    EXPECT_EQ(d.load(1, kBlock).value, 0xbeefu);
    d.drain();
    d.expectConserved();
}

TEST(TokenB, MigratoryOptimizationHandsOverAllTokens)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    d.store(0, kBlock, 0xaaaa);
    // A written exclusive owner answering a *read* hands over
    // read/write permission (Section 4.2).
    const ProcResponse r = d.load(3, kBlock);
    EXPECT_TRUE(r.cacheToCache);
    EXPECT_EQ(r.value, 0xaaaau);
    EXPECT_EQ(tcache(d, 3).moesiState(kBlock), TokenMoesi::modified);
    EXPECT_EQ(tcache(d, 0).moesiState(kBlock), TokenMoesi::invalid);
    // The follow-on store is now a hit: the migratory pattern pays.
    EXPECT_FALSE(d.store(3, kBlock, 0xbbbb).wasMiss);
    d.drain();
    d.expectConserved();
}

TEST(TokenB, MigratoryOptimizationDisabled)
{
    SystemConfig cfg = smallConfig(ProtocolKind::tokenB);
    cfg.proto.migratoryOpt = false;
    ProtoDriver d(cfg);
    d.store(0, kBlock, 0xaaaa);
    const ProcResponse r = d.load(3, kBlock);
    EXPECT_EQ(r.value, 0xaaaau);
    // Without the optimization the owner shares a single token.
    EXPECT_EQ(tcache(d, 3).moesiState(kBlock), TokenMoesi::shared);
    EXPECT_EQ(tcache(d, 0).moesiState(kBlock), TokenMoesi::owned);
    d.drain();
    d.expectConserved();
}

TEST(TokenB, CleanOwnerSharesWithoutMigratory)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    d.store(0, kBlock, 0xaaaa);
    d.load(3, kBlock);          // migratory: node 3 becomes M (clean)
    // Node 3 never wrote, so the next reader gets a plain token.
    const ProcResponse r = d.load(2, kBlock);
    EXPECT_EQ(r.value, 0xaaaau);
    EXPECT_EQ(tcache(d, 2).moesiState(kBlock), TokenMoesi::shared);
    EXPECT_EQ(tcache(d, 3).moesiState(kBlock), TokenMoesi::owned);
    d.drain();
    d.expectConserved();
}

TEST(TokenB, ManyReadersShareTokens)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB, "torus", 4));
    for (NodeId n = 0; n < 4; ++n) {
        const ProcResponse r = d.load(n, kBlock);
        EXPECT_EQ(r.value, kBlock);
    }
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_TRUE(d.sys->cache(n).hasPermission(kBlock, MemOp::load));
    d.drain();
    d.expectConserved();
}

TEST(TokenB, StoreInvalidatesAllReaders)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    for (NodeId n = 0; n < 4; ++n)
        d.load(n, kBlock);
    const ProcResponse r = d.store(2, kBlock, 0xcafe);
    EXPECT_TRUE(r.wasMiss);
    EXPECT_EQ(tcache(d, 2).moesiState(kBlock), TokenMoesi::modified);
    for (NodeId n = 0; n < 4; ++n) {
        if (n != 2) {
            EXPECT_EQ(tcache(d, n).moesiState(kBlock),
                      TokenMoesi::invalid);
            // The sequencer was told so its L1 stays inclusive.
            EXPECT_NE(std::find(d.removals[n].begin(),
                                d.removals[n].end(), kBlock),
                      d.removals[n].end());
        }
    }
    EXPECT_EQ(d.load(3, kBlock).value, 0xcafeu);
    d.drain();
    d.expectConserved();
}

TEST(TokenB, Figure2RaceBothRequestsEventuallySucceed)
{
    // Section 2 / Figure 2b: a ReqM (P0) races a ReqS (P1). With
    // tokens, the race may split tokens between them; reissues (and
    // ultimately persistent requests) resolve it.
    ProtoDriver d(smallConfig(ProtocolKind::tokenB, "torus", 4));
    d.issue(0, MemOp::store, kBlock, 0xd00d);
    d.issue(1, MemOp::load, kBlock);
    ASSERT_TRUE(d.runUntilCompletions(0, 1));
    ASSERT_TRUE(d.runUntilCompletions(1, 1));
    const ProcResponse &w = d.completions[0][0];
    const ProcResponse &r = d.completions[1][0];
    EXPECT_TRUE(w.wasMiss);
    // The read saw either the old or the new value, never garbage.
    EXPECT_TRUE(r.value == kBlock || r.value == 0xd00d)
        << std::hex << r.value;
    d.drain();
    d.expectConserved();
}

TEST(TokenB, RacingStoresFromAllNodesStayCoherent)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB, "torus", 4));
    for (NodeId n = 0; n < 4; ++n)
        d.issue(n, MemOp::store, kBlock, 0x100 + n);
    for (NodeId n = 0; n < 4; ++n)
        ASSERT_TRUE(d.runUntilCompletions(n, 1)) << "node " << n;
    d.drain();
    d.expectConserved();
    // Exactly one node ended with all tokens (or memory did, had
    // everyone evicted - not possible here).
    int modified = 0;
    for (NodeId n = 0; n < 4; ++n)
        modified += tcache(d, n).moesiState(kBlock) ==
            TokenMoesi::modified;
    EXPECT_EQ(modified, 1);
    // The final read returns one of the written values.
    const ProcResponse r = d.load(0, kBlock);
    EXPECT_GE(r.value, 0x100u);
    EXPECT_LE(r.value, 0x103u);
}

TEST(TokenB, EvictionReturnsTokensToMemory)
{
    SystemConfig cfg = smallConfig(ProtocolKind::tokenB);
    cfg.l2 = CacheParams{512, 2, 64, nsToTicks(6)};   // 4 sets x 2 ways
    ProtoDriver d(cfg);
    // Three blocks in set 0 (stride 256); the third evicts the LRU.
    d.store(1, 0x000, 0x111);
    d.store(1, 0x100, 0x222);
    d.store(1, 0x200, 0x333);
    d.drain();
    d.expectConserved();
    EXPECT_EQ(tcache(d, 1).moesiState(0x000), TokenMoesi::invalid);
    // The dirty data went home with the owner token.
    EXPECT_EQ(tmem(d, 0).tokenState(0x000).count, 4);
    EXPECT_EQ(tmem(d, 0).peekData(0x000), 0x111u);
    // And a fresh read sees it.
    EXPECT_EQ(d.load(2, 0x000).value, 0x111u);
}

TEST(TokenB, DatalessTokensDoNotGrantReads)
{
    // A cache holding non-owner tokens without valid data must not
    // satisfy loads (invariant #3'). Exercised via the state check.
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    d.load(1, kBlock);
    EXPECT_FALSE(d.sys->cache(3).hasPermission(kBlock, MemOp::load));
}

TEST(TokenB, Table2BucketsPartitionMisses)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    for (NodeId n = 0; n < 4; ++n)
        d.issue(n, MemOp::store, kBlock, n);
    for (NodeId n = 0; n < 4; ++n)
        ASSERT_TRUE(d.runUntilCompletions(n, 1));
    d.drain();
    std::uint64_t total = 0, buckets = 0;
    for (NodeId n = 0; n < 4; ++n) {
        const CacheCtrlStats &s = d.sys->cache(n).stats();
        total += s.missesCompleted;
        buckets += s.missesNotReissued + s.missesReissuedOnce +
            s.missesReissuedMore + s.missesPersistent;
    }
    EXPECT_EQ(total, buckets);
    EXPECT_EQ(total, 4u);
}

TEST(TokenB, LargerTokenCountWorks)
{
    SystemConfig cfg = smallConfig(ProtocolKind::tokenB);
    cfg.proto.tokensPerBlock = 32;   // T > numProcs is allowed
    ProtoDriver d(cfg);
    d.load(1, kBlock);
    d.load(2, kBlock);
    const ProcResponse r = d.store(3, kBlock, 0x77);
    EXPECT_TRUE(r.wasMiss);
    EXPECT_EQ(tcache(d, 3).moesiState(kBlock), TokenMoesi::modified);
    d.drain();
    d.expectConserved();
}

TEST(TokenB, WorksOnOrderedTreeToo)
{
    // TokenB needs no ordering but must also run on the tree
    // (Figure 4a compares TokenB on both interconnects).
    ProtoDriver d(smallConfig(ProtocolKind::tokenB, "tree", 4));
    d.store(0, kBlock, 0x42);
    EXPECT_EQ(d.load(1, kBlock).value, 0x42u);
    d.drain();
    d.expectConserved();
}

TEST(TokenB, HomeNodeRequesterLocalMemory)
{
    // Block homed at the requesting node: the broadcast's local copy
    // must still reach the co-located memory controller.
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    const ProcResponse r = d.load(0, kBlock);   // home(0x400) == 0
    EXPECT_TRUE(r.wasMiss);
    EXPECT_EQ(r.value, kBlock);
    d.drain();
    d.expectConserved();
}

TEST(TokenB, SequentialOwnershipChainAcrossAllNodes)
{
    ProtoDriver d(smallConfig(ProtocolKind::tokenB));
    std::uint64_t expect = kBlock;
    for (int round = 0; round < 3; ++round) {
        for (NodeId n = 0; n < 4; ++n) {
            EXPECT_EQ(d.load(n, kBlock).value, expect);
            expect = 0x1000u * (round + 1) + n;
            d.store(n, kBlock, expect);
        }
    }
    d.drain();
    d.expectConserved();
}

} // namespace
} // namespace tokensim
