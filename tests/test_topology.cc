/**
 * @file
 * Unit tests for the tree and torus topologies: route lengths,
 * Figure 1's latency claims (four crossings on the tree, two on
 * average for the 4x4 torus), broadcast-tree structure, and multicast
 * pruning.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "net/topology.hh"

namespace tokensim {
namespace {

TEST(TreeTopology, EveryUnicastIsFourCrossings)
{
    TreeTopology t(16, 4);
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(t.hops(s, d), 4) << "s=" << s << " d=" << d;
        }
    }
    EXPECT_DOUBLE_EQ(t.averageHops(), 4.0);
}

TEST(TreeTopology, SwitchCount)
{
    // 16 procs, fan-out 4: 4 in-switches + root + 4 out-switches.
    TreeTopology t(16, 4);
    EXPECT_EQ(t.numNodes(), 16);
    EXPECT_EQ(t.numVertices(), 16 + 9);
    EXPECT_TRUE(t.totallyOrdered());
    EXPECT_GE(t.rootVertex(), 16);
}

TEST(TreeTopology, RouteClimbsThroughRoot)
{
    TreeTopology t(16, 4);
    const auto &r = t.route(0, 15);
    ASSERT_EQ(r.size(), 4u);
    // Second link must end at the root.
    EXPECT_EQ(t.links()[r[1]].to, t.rootVertex());
    EXPECT_EQ(t.links()[r[2]].from, t.rootVertex());
}

TEST(TreeTopology, DownTreeReachesEveryNode)
{
    TreeTopology t(16, 4);
    std::set<int> reached;
    for (const TreeEdge &e : t.downTree()) {
        if (e.to < t.numNodes())
            reached.insert(e.to);
    }
    EXPECT_EQ(reached.size(), 16u);
    // 4 root->out links + 16 out->proc links.
    EXPECT_EQ(t.downTree().size(), 20u);
}

TEST(TreeTopology, RouteToRootMatchesPrefix)
{
    TreeTopology t(16, 4);
    for (NodeId s = 0; s < 16; ++s) {
        const auto &up = t.routeToRoot(s);
        ASSERT_EQ(up.size(), 2u);
        EXPECT_EQ(t.links()[up[1]].to, t.rootVertex());
        // The up-path is the prefix of any unicast route.
        const auto &r = t.route(s, (s + 1) % 16);
        EXPECT_EQ(r[0], up[0]);
        EXPECT_EQ(r[1], up[1]);
    }
}

TEST(TreeTopology, OddNodeCounts)
{
    TreeTopology t(6, 4);   // two groups
    EXPECT_EQ(t.numVertices(), 6 + 2 * 2 + 1);
    for (NodeId s = 0; s < 6; ++s) {
        for (NodeId d = 0; d < 6; ++d) {
            if (s != d) {
                EXPECT_EQ(t.hops(s, d), 4);
            }
        }
    }
}

TEST(TorusTopology, AverageHopsMatchesFigure1)
{
    // Figure 1b: the 4x4 torus averages two link crossings.
    TorusTopology t(4, 4);
    EXPECT_FALSE(t.totallyOrdered());
    // Distances in a 4-ring: 0,1,2,1 -> mean over x and y offsets
    // excluding (0,0): (sum over all 16 pairs of dx+dy) / 15.
    // sum_dx over 4 values = 4, so total = 4*4 + 4*4 = 32; 32/15.
    EXPECT_NEAR(t.averageHops(), 32.0 / 15.0, 1e-9);
}

TEST(TorusTopology, HopsAreShortestWrapDistance)
{
    TorusTopology t(4, 4);
    // Node 0 = (0,0); node 3 = (3,0) is one wrap-hop away.
    EXPECT_EQ(t.hops(0, 3), 1);
    // (2,2) from (0,0): 2 + 2.
    EXPECT_EQ(t.hops(0, 10), 4);
    // Symmetry.
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s != d) {
                EXPECT_EQ(t.hops(s, d), t.hops(d, s));
            }
        }
    }
}

TEST(TorusTopology, LinkCount)
{
    // 4x4 bidirectional torus: 4 directed links per node.
    TorusTopology t(4, 4);
    EXPECT_EQ(t.links().size(), 16u * 4u);
}

TEST(TorusTopology, BroadcastTreeSpansAllNodesOnce)
{
    TorusTopology t(4, 4);
    for (NodeId s = 0; s < 16; ++s) {
        const auto &edges = t.broadcastTree(s);
        // A spanning tree reaching 15 other nodes uses exactly 15
        // links (each link carries one copy - bandwidth-efficient
        // multicast).
        EXPECT_EQ(edges.size(), 15u);
        std::set<int> reached;
        std::set<int> visited{static_cast<int>(s)};
        for (const TreeEdge &e : edges) {
            // Forward order: parent reached before child.
            EXPECT_TRUE(visited.count(e.from));
            visited.insert(e.to);
            EXPECT_FALSE(reached.count(e.to)) << "duplicate delivery";
            reached.insert(e.to);
        }
        EXPECT_EQ(reached.size(), 15u);
    }
}

TEST(TorusTopology, MulticastTreePrunes)
{
    TorusTopology t(4, 4);
    const std::vector<NodeId> dests{1, 2};
    const auto edges = t.multicastTree(0, dests);
    // Destinations 1=(1,0) and 2=(2,0) share the first row link.
    EXPECT_EQ(edges.size(), 2u);
}

TEST(TorusTopology, MulticastToAllEqualsBroadcast)
{
    TorusTopology t(4, 4);
    std::vector<NodeId> all;
    for (NodeId n = 0; n < 16; ++n)
        all.push_back(n);
    EXPECT_EQ(t.multicastTree(3, all).size(),
              t.broadcastTree(3).size());
}

TEST(TorusTopology, RectangularShapes)
{
    TorusTopology t(4, 2);   // 8 nodes
    EXPECT_EQ(t.numNodes(), 8);
    for (NodeId s = 0; s < 8; ++s)
        EXPECT_EQ(t.broadcastTree(s).size(), 7u);
}

TEST(TorusTopology, MakeSquareFactorsNodeCount)
{
    std::unique_ptr<TorusTopology> t4(TorusTopology::makeSquare(4));
    EXPECT_EQ(t4->kx() * t4->ky(), 4);
    std::unique_ptr<TorusTopology> t8(TorusTopology::makeSquare(8));
    EXPECT_EQ(t8->kx() * t8->ky(), 8);
    std::unique_ptr<TorusTopology> t64(TorusTopology::makeSquare(64));
    EXPECT_EQ(t64->kx(), 8);
    EXPECT_EQ(t64->ky(), 8);
}

TEST(TorusTopology, BroadcastCostGrowsLinearlyUnicastAsSqrtN)
{
    // Footnote 4 / Question 5: broadcast cost on a torus is Theta(n)
    // link crossings while unicast grows as Theta(sqrt n) - the root
    // of TokenB's bandwidth scaling limit.
    std::unique_ptr<TorusTopology> small(TorusTopology::makeSquare(16));
    std::unique_ptr<TorusTopology> big(TorusTopology::makeSquare(64));
    EXPECT_EQ(small->broadcastTree(0).size(), 15u);
    EXPECT_EQ(big->broadcastTree(0).size(), 63u);
    EXPECT_NEAR(big->averageHops() / small->averageHops(), 2.0, 0.15);
}

TEST(TopologyFactory, ByName)
{
    std::unique_ptr<Topology> tree(makeTopology("tree", 16));
    EXPECT_TRUE(tree->totallyOrdered());
    std::unique_ptr<Topology> torus(makeTopology("torus", 16));
    EXPECT_FALSE(torus->totallyOrdered());
    EXPECT_THROW(makeTopology("ring", 16), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Kilonode smokes: the structural invariants must hold at the 1024-
// node tier the multi-tenant sweeps run at, not just at 4x4.
// ---------------------------------------------------------------------

TEST(TorusTopology, KilonodeSquareBroadcastAndHops)
{
    std::unique_ptr<TorusTopology> t(TorusTopology::makeSquare(1024));
    EXPECT_EQ(t->kx(), 32);
    EXPECT_EQ(t->ky(), 32);
    // Shortest wrap distance caps at kx/2 + ky/2.
    for (NodeId d : {NodeId{1}, NodeId{31}, NodeId{512},
                     NodeId{1023}}) {
        EXPECT_LE(t->hops(0, d), 32);
        EXPECT_GE(t->hops(0, d), 1);
    }
    // Spanning broadcast from a few scattered roots.
    for (NodeId s : {NodeId{0}, NodeId{511}, NodeId{1023}}) {
        const auto &edges = t->broadcastTree(s);
        ASSERT_EQ(edges.size(), 1023u);
        std::set<int> reached;
        for (const TreeEdge &e : edges)
            reached.insert(e.to);
        EXPECT_EQ(reached.size(), 1023u);
        EXPECT_FALSE(reached.count(static_cast<int>(s)));
    }
}

TEST(TreeTopology, KilonodeTreeStaysOrderedWithUniformDepth)
{
    TreeTopology t(1024, 4);
    EXPECT_TRUE(t.totallyOrdered());
    EXPECT_EQ(t.numNodes(), 1024);
    // Every unicast between distinct nodes still climbs through the
    // ordering root in a bounded number of crossings.
    int max_hops = 0;
    for (NodeId d : {NodeId{1}, NodeId{255}, NodeId{256},
                     NodeId{1023}}) {
        max_hops = std::max(max_hops, t.hops(0, d));
        EXPECT_GE(t.hops(0, d), 2);
    }
    EXPECT_LE(max_hops, 12);
    std::set<int> reached;
    for (const TreeEdge &e : t.downTree()) {
        if (e.to < t.numNodes())
            reached.insert(e.to);
    }
    EXPECT_EQ(reached.size(), 1024u);
}

} // namespace
} // namespace tokensim
