/**
 * @file
 * Trace subsystem tests: binary format round trips, the recorder and
 * replayer reproduce live runs bit-identically, System::reset handles
 * preset↔trace switches, and every malformed-input class fails with a
 * clear TraceError instead of undefined behavior.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "workload/factory.hh"
#include "workload/trace.hh"

namespace tokensim {
namespace {

/**
 * Scratch traces live under ./test_traces (the build dir when run via
 * ctest); CI uploads the directory as an artifact when a job fails.
 */
std::string
scratchPath(const std::string &name)
{
    std::filesystem::create_directories("test_traces");
    return "test_traces/" + name;
}

TraceHeader
headerFor(std::uint32_t nodes, const std::string &provenance = "unit")
{
    TraceHeader hdr;
    hdr.numNodes = nodes;
    hdr.seed = 42;
    hdr.provenance = provenance;
    return hdr;
}

void
expectRawIdentical(const System::Results &a, const System::Results &b)
{
    // The registry covers every metric of the run bit-exactly; a few
    // headline accessors are spot-checked so a mismatch names the
    // offending statistic instead of just "registries differ".
    EXPECT_EQ(a.runtimeTicks(), b.runtimeTicks());
    EXPECT_EQ(a.ops(), b.ops());
    EXPECT_EQ(a.misses(), b.misses());
    EXPECT_EQ(a.avgMissLatencyTicks(), b.avgMissLatencyTicks());
    EXPECT_EQ(a.totalLinkBytes(), b.totalLinkBytes());
    EXPECT_TRUE(a.metrics == b.metrics);
}

// ---------------------------------------------------------------------
// Format round trips
// ---------------------------------------------------------------------

TEST(TraceFormat, RoundTripsArbitraryOps)
{
    // Addresses jump forward and backward by large strides — the
    // zigzag delta coding must reproduce all of them exactly.
    TraceWriter w(headerFor(2, "fuzz"));
    std::vector<std::vector<WorkloadOp>> ops(2);
    Rng rng(7);
    for (NodeId n = 0; n < 2; ++n) {
        for (int i = 0; i < 5000; ++i) {
            WorkloadOp op;
            op.addr = rng.next() >> rng.below(40);
            op.op = rng.chance(0.4) ? MemOp::store : MemOp::load;
            op.endsTransaction = rng.chance(0.05);
            ops[n].push_back(op);
            w.append(n, op);
        }
    }

    const std::string buf = w.serialize();
    const TraceData t = TraceData::parse(buf.data(), buf.size());
    EXPECT_EQ(t.header().provenance, "fuzz");
    EXPECT_EQ(t.header().seed, 42u);
    EXPECT_EQ(t.numNodes(), 2u);
    EXPECT_EQ(t.totalOps(), 10000u);

    for (NodeId n = 0; n < 2; ++n) {
        TraceData::Reader r(t, n);
        for (const WorkloadOp &expect : ops[n]) {
            ASSERT_FALSE(r.done());
            const WorkloadOp got = r.next();
            ASSERT_EQ(got.addr, expect.addr);
            ASSERT_EQ(got.op, expect.op);
            ASSERT_EQ(got.endsTransaction, expect.endsTransaction);
        }
        EXPECT_TRUE(r.done());
        EXPECT_THROW(r.next(), TraceError);
    }
}

TEST(TraceFormat, FileRoundTrip)
{
    TraceWriter w(headerFor(1, "file"));
    w.append(0, WorkloadOp{MemOp::store, 0x1000, true});
    const std::string path = scratchPath("file_round_trip.trace");
    w.writeFile(path);

    const auto t = TraceData::load(path);
    EXPECT_EQ(t->opsForNode(0), 1u);
    TraceData::Reader r(*t, 0);
    const WorkloadOp op = r.next();
    EXPECT_EQ(op.addr, 0x1000u);
    EXPECT_EQ(op.op, MemOp::store);
    EXPECT_TRUE(op.endsTransaction);
}

TEST(TraceFormat, ReaderRewindReplaysFromStart)
{
    TraceWriter w(headerFor(1));
    w.append(0, WorkloadOp{MemOp::load, 0x40, false});
    w.append(0, WorkloadOp{MemOp::store, 0x80, true});
    const std::string buf = w.serialize();
    const TraceData t = TraceData::parse(buf.data(), buf.size());

    TraceData::Reader r(t, 0);
    EXPECT_EQ(r.next().addr, 0x40u);
    EXPECT_EQ(r.next().addr, 0x80u);
    r.rewind();
    EXPECT_EQ(r.next().addr, 0x40u);   // delta base restarts at 0
}

TEST(TraceWorkload, WrapsAroundWhenBudgetExceedsRecording)
{
    TraceWriter w(headerFor(1));
    w.append(0, WorkloadOp{MemOp::load, 0x40, false});
    w.append(0, WorkloadOp{MemOp::store, 0x80, true});
    const std::string buf = w.serialize();
    auto t = std::make_shared<const TraceData>(
        TraceData::parse(buf.data(), buf.size()));

    TraceWorkload wl(t, 0);
    for (int lap = 0; lap < 3; ++lap) {
        EXPECT_EQ(wl.next().addr, 0x40u);
        EXPECT_EQ(wl.next().addr, 0x80u);
    }
}

// ---------------------------------------------------------------------
// Malformed inputs: clear errors, never UB
// ---------------------------------------------------------------------

class MalformedTrace : public ::testing::Test
{
  protected:
    std::string
    goodBuffer()
    {
        TraceWriter w(headerFor(2, "bad"));
        for (NodeId n = 0; n < 2; ++n) {
            for (int i = 0; i < 50; ++i) {
                w.append(n, WorkloadOp{i % 3 ? MemOp::load
                                             : MemOp::store,
                                       static_cast<Addr>(i) * 64,
                                       i % 10 == 9});
            }
        }
        return w.serialize();
    }
};

TEST_F(MalformedTrace, TruncationAtEveryLengthThrows)
{
    const std::string buf = goodBuffer();
    // Every proper prefix must be rejected — header cuts, mid-array
    // cuts, and mid-stream cuts alike.
    for (std::size_t len = 0; len < buf.size(); ++len) {
        EXPECT_THROW(TraceData::parse(buf.data(), len), TraceError)
            << "prefix of " << len << " bytes parsed";
    }
    EXPECT_NO_THROW(TraceData::parse(buf.data(), buf.size()));
}

TEST_F(MalformedTrace, BadMagicThrows)
{
    std::string buf = goodBuffer();
    buf[0] = 'X';
    try {
        TraceData::parse(buf.data(), buf.size());
        FAIL() << "bad magic accepted";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("magic"),
                  std::string::npos);
    }
}

TEST_F(MalformedTrace, UnsupportedVersionThrows)
{
    std::string buf = goodBuffer();
    buf[8] = 99;   // version field follows the 8-byte magic
    try {
        TraceData::parse(buf.data(), buf.size());
        FAIL() << "future version accepted";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST_F(MalformedTrace, TrailingGarbageThrows)
{
    std::string buf = goodBuffer() + "junk";
    EXPECT_THROW(TraceData::parse(buf.data(), buf.size()),
                 TraceError);
}

TEST_F(MalformedTrace, ReservedFlagBitsThrow)
{
    // A one-op trace ends with [flags byte][1-byte varint]; setting
    // reserved flag bits must be rejected by the parse-time stream
    // validation.
    TraceWriter w(headerFor(1));
    w.append(0, WorkloadOp{MemOp::load, 0, false});
    std::string one = w.serialize();
    one[one.size() - 2] = '\x7c';
    EXPECT_THROW(TraceData::parse(one.data(), one.size()),
                 TraceError);
}

TEST_F(MalformedTrace, OverlongVarintThrows)
{
    // An 11-byte varint (ten continuation bytes) cannot encode a
    // 64-bit value; the decoder must reject it rather than shift past
    // the type width.
    TraceWriter w(headerFor(1));
    w.append(0, WorkloadOp{MemOp::load, 0, false});
    std::string buf = w.serialize();
    // Single node, so the layout ends: ...[opsPerNode u64]
    // [streamBytes u64][flags byte][1-byte varint]. Swap the stream
    // for flags + an overlong varint and patch streamBytes (LE).
    buf.resize(buf.size() - 2);
    buf[buf.size() - 8] = 12;
    buf.push_back('\0');
    for (int i = 0; i < 10; ++i)
        buf.push_back('\x80');
    buf.push_back('\x01');
    EXPECT_THROW(TraceData::parse(buf.data(), buf.size()),
                 TraceError);
}

TEST_F(MalformedTrace, MissingFileThrows)
{
    EXPECT_THROW(TraceData::load("test_traces/does_not_exist.trace"),
                 TraceError);
}

TEST_F(MalformedTrace, NodeCountMismatchThrowsAtSystemBuild)
{
    TraceWriter w(headerFor(4, "mismatch"));
    for (NodeId n = 0; n < 4; ++n)
        w.append(n, WorkloadOp{MemOp::load, 0x40, true});
    const std::string path = scratchPath("node_mismatch.trace");
    w.writeFile(path);

    SystemConfig cfg;
    cfg.numNodes = 8;   // trace fixes 4
    cfg.workload = WorkloadSpec::trace(path);
    cfg.opsPerProcessor = 1;
    try {
        System sys(cfg);
        FAIL() << "node-count mismatch accepted";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("nodes"),
                  std::string::npos);
    }
}

TEST_F(MalformedTrace, UnknownPresetStillThrowsInvalidArgument)
{
    SystemConfig cfg;
    cfg.numNodes = 2;
    cfg.workload = "doom3";
    EXPECT_THROW(System{cfg}, std::invalid_argument);
}

TEST(TraceCacheTest, RewritingAPathInvalidatesTheCachedParse)
{
    // In-process record → replay → re-record → replay must see the
    // second recording, not the interned parse of the first.
    const std::string path = scratchPath("cache_invalidate.trace");
    TraceWriter a(headerFor(1, "first"));
    a.append(0, WorkloadOp{MemOp::load, 0x40, false});
    a.writeFile(path);
    EXPECT_EQ(TraceData::loadCached(path)->header().provenance,
              "first");

    TraceWriter b(headerFor(1, "second"));
    b.append(0, WorkloadOp{MemOp::store, 0x80, true});
    b.writeFile(path);
    EXPECT_EQ(TraceData::loadCached(path)->header().provenance,
              "second");
}

// ---------------------------------------------------------------------
// Record → replay fidelity
// ---------------------------------------------------------------------

SystemConfig
liveConfig(const std::string &preset)
{
    SystemConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = ProtocolKind::tokenB;
    cfg.workload = preset;
    cfg.opsPerProcessor = 400;
    cfg.warmupOpsPerProcessor = 100;
    cfg.seed = 17;
    return cfg;
}

TEST(TraceReplay, ReplayReproducesLiveRunBitIdentically)
{
    for (const char *preset : {"oltp", "producer-consumer",
                               "lock-ping", "ycsb", "tpcc"}) {
        SCOPED_TRACE(preset);
        SystemConfig live = liveConfig(preset);
        live.recordTrace =
            scratchPath(std::string("replay_") + preset + ".trace");
        System recorder(live);
        recorder.run();
        const System::Results live_results = recorder.results();

        // Every sequencer pulled exactly its budget — the contract
        // that makes the recorded stream lengths deterministic.
        for (int n = 0; n < live.numNodes; ++n) {
            EXPECT_EQ(recorder.sequencer(static_cast<NodeId>(n))
                          .opsPulled(),
                      live.opsPerProcessor +
                          live.warmupOpsPerProcessor);
        }

        SystemConfig replay = live;
        replay.recordTrace.clear();
        replay.workload = WorkloadSpec::trace(live.recordTrace);
        System replayer(replay);
        replayer.run();
        expectRawIdentical(replayer.results(), live_results);
    }
}

TEST(TraceReplay, RecordedBytesAreProtocolIndependent)
{
    // The pull-exactly-the-budget contract means the recorded streams
    // depend only on (workload, seed, budget) — never on protocol or
    // topology timing. Byte-identical traces prove it.
    std::string first;
    for (ProtocolKind proto : {ProtocolKind::tokenB,
                               ProtocolKind::directory,
                               ProtocolKind::hammer}) {
        SystemConfig cfg = liveConfig("oltp");
        cfg.protocol = proto;
        cfg.recordTrace = scratchPath(
            std::string("proto_indep_") + protocolName(proto) +
            ".trace");
        System sys(cfg);
        sys.run();

        std::FILE *f = std::fopen(cfg.recordTrace.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::string bytes;
        char chunk[4096];
        std::size_t got;
        while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
            bytes.append(chunk, got);
        std::fclose(f);

        if (first.empty())
            first = bytes;
        else
            EXPECT_EQ(bytes, first) << protocolName(proto);
    }
}

TEST(TraceReplay, ReplayRunsUnderDifferentProtocolAndTopology)
{
    SystemConfig live = liveConfig("oltp");
    live.recordTrace = scratchPath("cross_proto.trace");
    runOnce(live, live.seed);

    for (ProtocolKind proto : {ProtocolKind::directory,
                               ProtocolKind::snooping,
                               ProtocolKind::tokenM}) {
        SCOPED_TRACE(protocolName(proto));
        SystemConfig replay = live;
        replay.recordTrace.clear();
        replay.workload = WorkloadSpec::trace(live.recordTrace);
        replay.protocol = proto;
        replay.topology =
            proto == ProtocolKind::snooping ? "tree" : "torus";
        // Replay the whole recording (warmup included) as measured
        // ops: the trace is just an op stream, so the replay run may
        // slice it into warmup/measured windows differently.
        replay.warmupOpsPerProcessor = 0;
        replay.opsPerProcessor =
            live.opsPerProcessor + live.warmupOpsPerProcessor;
        const System::Results r = runOnce(replay, replay.seed);
        EXPECT_EQ(r.ops(), replay.opsPerProcessor *
                               static_cast<std::uint64_t>(
                                   replay.numNodes));
        EXPECT_GT(r.misses(), 0u);
    }
}

// ---------------------------------------------------------------------
// System::reset × trace workloads
// ---------------------------------------------------------------------

TEST(TraceReset, PresetAndTraceSwitchesStayBitIdenticalToFresh)
{
    // Record two different traces up front.
    SystemConfig rec_a = liveConfig("oltp");
    rec_a.recordTrace = scratchPath("reset_a.trace");
    runOnce(rec_a, rec_a.seed);
    SystemConfig rec_b = liveConfig("producer-consumer");
    rec_b.recordTrace = scratchPath("reset_b.trace");
    rec_b.seed = 99;
    runOnce(rec_b, rec_b.seed);

    // One reused System walks preset → trace A → trace B → preset;
    // every leg must match a fresh construction bit for bit.
    SystemConfig preset_cfg = liveConfig("uniform");
    SystemConfig trace_a = liveConfig("oltp");
    trace_a.workload = WorkloadSpec::trace(rec_a.recordTrace);
    SystemConfig trace_b = liveConfig("producer-consumer");
    trace_b.workload = WorkloadSpec::trace(rec_b.recordTrace);
    trace_b.seed = 7;

    std::unique_ptr<System> reused;
    int leg = 0;
    for (const SystemConfig *cfg : {&preset_cfg, &trace_a, &trace_b,
                                    &preset_cfg}) {
        SCOPED_TRACE("leg " + std::to_string(leg++) + ": " +
                     cfg->workload.name());
        expectRawIdentical(
            runOnceReusing(reused, *cfg, cfg->seed),
            runOnce(*cfg, cfg->seed));
        ASSERT_NE(reused, nullptr);
    }
}

TEST(TraceReset, ShapeMismatchFallsBackToFreshConstruction)
{
    SystemConfig rec = liveConfig("oltp");
    rec.numNodes = 4;
    rec.recordTrace = scratchPath("reset_shape.trace");
    runOnce(rec, rec.seed);

    SystemConfig trace_cfg = rec;
    trace_cfg.recordTrace.clear();
    trace_cfg.workload = WorkloadSpec::trace(rec.recordTrace);

    // Same shape: reset accepts the preset→trace switch.
    SystemConfig preset_cfg = trace_cfg;
    preset_cfg.workload = "oltp";
    System sys(preset_cfg);
    EXPECT_TRUE(sys.reset(trace_cfg));
    sys.run();

    // Different node count: reset declines, and the fallback path
    // (fresh construction, as runOnceReusing takes it) then reports
    // the trace/system mismatch loudly instead of misreplaying.
    SystemConfig wider = trace_cfg;
    wider.numNodes = 8;
    EXPECT_FALSE(sys.reset(wider));
    std::unique_ptr<System> reused;
    EXPECT_THROW(runOnceReusing(reused, wider, wider.seed),
                 TraceError);
    EXPECT_EQ(reused, nullptr);   // a half-built System is not reused
}

TEST(TraceReset, ResetToBadTracePathThrowsAndDropsSystem)
{
    SystemConfig cfg = liveConfig("oltp");
    cfg.opsPerProcessor = 50;
    cfg.warmupOpsPerProcessor = 0;
    std::unique_ptr<System> reused;
    runOnceReusing(reused, cfg, cfg.seed);
    ASSERT_NE(reused, nullptr);

    SystemConfig bad = cfg;
    bad.workload = WorkloadSpec::trace("test_traces/nope.trace");
    EXPECT_THROW(runOnceReusing(reused, bad, bad.seed), TraceError);
    EXPECT_EQ(reused, nullptr);
}

} // namespace
} // namespace tokensim
