/**
 * @file
 * Wire-format fuzz suite for the sweep runner's serialization layer
 * (harness/wire.hh), mirroring test_trace.cc's coverage style: every
 * spec/result field round-trips bit-exactly, truncation at every byte
 * offset yields a typed WireError (never a crash, never a silent
 * success), and each malformed-input class — bad magic, bad version,
 * oversized varints, out-of-range enums, non-0/1 bools, trailing
 * garbage, layout skew — names its problem.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "harness/snapshot.hh"
#include "harness/wire.hh"

namespace tokensim {
namespace {

/** Bit-exact double comparison (NaN payloads and -0.0 must survive). */
void
expectSameBits(double a, double b, const char *what)
{
    std::uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ab, bb) << what;
}

/** A SystemConfig with every field moved off its default. */
SystemConfig
exhaustiveConfig()
{
    SystemConfig cfg;
    cfg.numNodes = 12;
    cfg.topology = "tree";
    cfg.protocol = ProtocolKind::tokenM;
    cfg.proto.migratoryOpt = false;
    cfg.proto.tokensPerBlock = 17;
    cfg.proto.maxReissues = 9;
    cfg.proto.reissueLatencyMultiple = 3.25;
    cfg.proto.reissueJitter = 0.125;
    cfg.proto.initialAvgMissLatency = 1234;
    cfg.proto.maxReissueTimeout = 987654;
    cfg.proto.reissueEnabled = false;
    cfg.proto.chaosDropFraction = 0.0625;
    cfg.proto.chaosMisdirectFraction = 0.03125;
    cfg.proto.perfectDirectory = true;
    cfg.proto.predictorEntries = 4096;
    cfg.proto.adaptiveThreshold = 0.75;
    cfg.proto.adaptiveWindow = 5555;
    cfg.net.linkLatency = 77;
    cfg.net.bytesPerNs = 6.4;
    cfg.net.unlimitedBandwidth = true;
    cfg.net.ctrlBytes = 16;
    cfg.net.dataBytes = 144;
    cfg.net.localDelay = 3;
    cfg.seq.maxOutstanding = 8;
    cfg.seq.thinkMean = 42;
    cfg.seq.l1 = CacheParams{64 * 1024, 2, 32, 5};
    cfg.seq.l1Enabled = false;
    cfg.l2 = CacheParams{1024 * 1024, 8, 32, 11};
    cfg.dram.latency = 321;
    cfg.dram.minGap = 7;
    cfg.ctrlLatency = 13;
    cfg.blockBytes = 32;
    cfg.workload = WorkloadSpec::trace("some/path.trace");
    cfg.workload.preset = "lock-ping";
    cfg.workload.uniformBlocks = 99;
    cfg.workload.storeFraction = 0.4375;
    cfg.workload.prodConsBlocks = 33;
    cfg.workload.lockBlocks = 21;
    cfg.workload.sectionOps = -3;
    cfg.workload.ycsbRecords = 777;
    cfg.workload.ycsbTheta = 0.9375;
    cfg.workload.ycsbReadFraction = 0.5625;
    cfg.workload.ycsbUpdateFraction = 0.1875;
    cfg.workload.ycsbScanLen = 23;
    cfg.workload.tpccWarehouses = 44;
    cfg.workload.tpccHomeFraction = 0.65625;
    cfg.workload.tpccOpsPerTxn = 31;
    cfg.workload.tpccThinkOps = -7;
    TenantSpec tenant_a;
    tenant_a.workload = WorkloadSpec("ycsb");
    tenant_a.workload.ycsbTheta = 0.59375;
    tenant_a.nodes = 5;
    TenantSpec tenant_b;
    tenant_b.workload = WorkloadSpec("tpcc");
    tenant_b.workload.tpccOpsPerTxn = 3;
    tenant_b.nodes = 7;
    cfg.tenants = {tenant_a, tenant_b};
    cfg.recordTrace = "out/rec.trace";
    cfg.sampling = SamplingSpec{5000, 250, 19};
    cfg.warmSnapshot =
        std::make_shared<const std::string>("opaque snapshot bytes");
    cfg.opsPerProcessor = 123456789;
    cfg.warmupOpsPerProcessor = 55;
    cfg.seed = 0xdeadbeefcafef00dULL;
    cfg.attachAuditor = true;
    cfg.maxTicks = std::numeric_limits<std::uint64_t>::max();
    return cfg;
}

void
expectSameConfig(const SystemConfig &a, const SystemConfig &b)
{
    EXPECT_EQ(a.numNodes, b.numNodes);
    EXPECT_EQ(a.topology, b.topology);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.proto.migratoryOpt, b.proto.migratoryOpt);
    EXPECT_EQ(a.proto.tokensPerBlock, b.proto.tokensPerBlock);
    EXPECT_EQ(a.proto.maxReissues, b.proto.maxReissues);
    expectSameBits(a.proto.reissueLatencyMultiple,
                   b.proto.reissueLatencyMultiple, "reissue multiple");
    expectSameBits(a.proto.reissueJitter, b.proto.reissueJitter,
                   "reissue jitter");
    EXPECT_EQ(a.proto.initialAvgMissLatency,
              b.proto.initialAvgMissLatency);
    EXPECT_EQ(a.proto.maxReissueTimeout, b.proto.maxReissueTimeout);
    EXPECT_EQ(a.proto.reissueEnabled, b.proto.reissueEnabled);
    expectSameBits(a.proto.chaosDropFraction,
                   b.proto.chaosDropFraction, "chaos drop");
    expectSameBits(a.proto.chaosMisdirectFraction,
                   b.proto.chaosMisdirectFraction, "chaos misdirect");
    EXPECT_EQ(a.proto.perfectDirectory, b.proto.perfectDirectory);
    EXPECT_EQ(a.proto.predictorEntries, b.proto.predictorEntries);
    expectSameBits(a.proto.adaptiveThreshold,
                   b.proto.adaptiveThreshold, "adaptive threshold");
    EXPECT_EQ(a.proto.adaptiveWindow, b.proto.adaptiveWindow);
    EXPECT_EQ(a.net.linkLatency, b.net.linkLatency);
    expectSameBits(a.net.bytesPerNs, b.net.bytesPerNs, "bytesPerNs");
    EXPECT_EQ(a.net.unlimitedBandwidth, b.net.unlimitedBandwidth);
    EXPECT_EQ(a.net.ctrlBytes, b.net.ctrlBytes);
    EXPECT_EQ(a.net.dataBytes, b.net.dataBytes);
    EXPECT_EQ(a.net.localDelay, b.net.localDelay);
    EXPECT_EQ(a.seq.maxOutstanding, b.seq.maxOutstanding);
    EXPECT_EQ(a.seq.thinkMean, b.seq.thinkMean);
    EXPECT_EQ(a.seq.l1.sizeBytes, b.seq.l1.sizeBytes);
    EXPECT_EQ(a.seq.l1.assoc, b.seq.l1.assoc);
    EXPECT_EQ(a.seq.l1.blockBytes, b.seq.l1.blockBytes);
    EXPECT_EQ(a.seq.l1.latency, b.seq.l1.latency);
    EXPECT_EQ(a.seq.l1Enabled, b.seq.l1Enabled);
    EXPECT_EQ(a.l2.sizeBytes, b.l2.sizeBytes);
    EXPECT_EQ(a.l2.assoc, b.l2.assoc);
    EXPECT_EQ(a.l2.blockBytes, b.l2.blockBytes);
    EXPECT_EQ(a.l2.latency, b.l2.latency);
    EXPECT_EQ(a.dram.latency, b.dram.latency);
    EXPECT_EQ(a.dram.minGap, b.dram.minGap);
    EXPECT_EQ(a.ctrlLatency, b.ctrlLatency);
    EXPECT_EQ(a.blockBytes, b.blockBytes);
    // WorkloadSpec::operator== covers every workload field (the
    // factory header documents it as the wire's serialization hook).
    EXPECT_TRUE(a.workload == b.workload);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t i = 0; i < a.tenants.size(); ++i)
        EXPECT_TRUE(a.tenants[i] == b.tenants[i]);
    EXPECT_EQ(a.recordTrace, b.recordTrace);
    EXPECT_EQ(a.sampling.ffOps, b.sampling.ffOps);
    EXPECT_EQ(a.sampling.measureOps, b.sampling.measureOps);
    EXPECT_EQ(a.sampling.windows, b.sampling.windows);
    // The snapshot blob ships by value; null and empty are the same
    // "no snapshot" state on the wire.
    EXPECT_EQ(a.warmSnapshot ? *a.warmSnapshot : std::string(),
              b.warmSnapshot ? *b.warmSnapshot : std::string());
    EXPECT_EQ(a.opsPerProcessor, b.opsPerProcessor);
    EXPECT_EQ(a.warmupOpsPerProcessor, b.warmupOpsPerProcessor);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.attachAuditor, b.attachAuditor);
    EXPECT_EQ(a.maxTicks, b.maxTicks);
}

/**
 * A registry-backed Results exercising every metric kind, including
 * adversarial payloads: extreme counters, a stat whose doubles are
 * NaN / -0.0 / +-infinity (the codec ships raw bit patterns, so they
 * must survive), empty stats and histograms, and a histogram touching
 * bucket 0 and the overflow bucket.
 */
System::Results
exhaustiveResults()
{
    System::Results r;
    MetricRegistry &m = r.metrics;
    m.addCounter("ops", metricPinned, 22222);
    m.addCounter("misses", metricPinned, 777);
    m.addCounter("runtime_ticks", metricDiagnostic, 111111);
    m.addCounter("huge", metricDiagnostic,
                 std::numeric_limits<std::uint64_t>::max());

    RunningStat lat;
    lat.add(10.5);
    lat.add(-2.25);
    lat.add(400.125);
    m.addStat("miss_latency_ticks", metricPinned, lat);

    RunningStat::Snapshot weird;
    weird.count = 3;
    weird.mean = -0.0;
    weird.m2 = std::nan("");
    weird.min = -std::numeric_limits<double>::infinity();
    weird.max = std::numeric_limits<double>::infinity();
    m.addStat("weird_stat", metricDiagnostic,
              RunningStat::fromSnapshot(weird));
    m.addStat("empty_stat", metricDiagnostic, RunningStat{});

    LogHistogram h;
    h.add(0.5);                              // bucket 0
    h.add(3.0);                              // bucket 2
    h.addCount(LogHistogram::kMaxBucket, 7); // overflow bucket
    m.addHistogram("miss_latency_hist", metricDiagnostic, h);
    m.addHistogram("empty_hist", metricDiagnostic, LogHistogram{});
    return r;
}

void
expectSameResults(const System::Results &a, const System::Results &b)
{
    // MetricRegistry equality is bit-exact on every payload (stat
    // doubles compare as IEEE-754 bit patterns, so NaN == NaN and
    // -0.0 != +0.0) and order-sensitive.
    EXPECT_EQ(a.metrics.size(), b.metrics.size());
    EXPECT_TRUE(a.metrics == b.metrics);
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

TEST(WirePrimitives, RoundTripEveryKind)
{
    WireWriter w;
    w.u8(0);
    w.u8(255);
    w.boolean(true);
    w.boolean(false);
    w.varint(0);
    w.varint(127);
    w.varint(128);
    w.varint(std::numeric_limits<std::uint64_t>::max());
    w.svarint(0);
    w.svarint(-1);
    w.svarint(std::numeric_limits<std::int64_t>::min());
    w.svarint(std::numeric_limits<std::int64_t>::max());
    w.f64(0.0);
    w.f64(-0.0);
    w.f64(std::numeric_limits<double>::infinity());
    w.f64(-std::numeric_limits<double>::infinity());
    w.f64(std::nan(""));
    w.f64(1.0 / 3.0);
    w.str("");
    w.str("hello, wire");
    w.str(std::string(3000, 'x'));

    WireReader r(w.buffer());
    EXPECT_EQ(r.u8("a"), 0);
    EXPECT_EQ(r.u8("b"), 255);
    EXPECT_TRUE(r.boolean("c"));
    EXPECT_FALSE(r.boolean("d"));
    EXPECT_EQ(r.varint("e"), 0u);
    EXPECT_EQ(r.varint("f"), 127u);
    EXPECT_EQ(r.varint("g"), 128u);
    EXPECT_EQ(r.varint("h"),
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(r.svarint("i"), 0);
    EXPECT_EQ(r.svarint("j"), -1);
    EXPECT_EQ(r.svarint("k"),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(r.svarint("l"),
              std::numeric_limits<std::int64_t>::max());
    expectSameBits(r.f64("m"), 0.0, "zero");
    expectSameBits(r.f64("n"), -0.0, "negative zero");
    expectSameBits(r.f64("o"), std::numeric_limits<double>::infinity(),
                   "inf");
    expectSameBits(r.f64("p"),
                   -std::numeric_limits<double>::infinity(), "-inf");
    expectSameBits(r.f64("q"), std::nan(""), "nan");
    expectSameBits(r.f64("r"), 1.0 / 3.0, "third");
    EXPECT_EQ(r.str("s"), "");
    EXPECT_EQ(r.str("t"), "hello, wire");
    EXPECT_EQ(r.str("u"), std::string(3000, 'x'));
    EXPECT_NO_THROW(r.expectEnd("primitives"));
}

TEST(WirePrimitives, OversizedVarintsAreTypedErrors)
{
    // 11 continuation bytes: can never terminate within 64 bits.
    const std::string eleven(11, '\x80');
    WireReader r1(eleven);
    EXPECT_THROW(r1.varint("v"), WireError);

    // 10 bytes whose last carries payload beyond bit 63.
    std::string overflow(9, '\x80');
    overflow.push_back('\x02');
    WireReader r2(overflow);
    EXPECT_THROW(r2.varint("v"), WireError);

    // ...while bit 63 exactly (u64 max) is fine.
    std::string max(9, '\xff');
    max.push_back('\x01');
    WireReader r3(max);
    EXPECT_EQ(r3.varint("v"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(WirePrimitives, TruncatedVarintIsATypedError)
{
    const std::string partial("\x80\x80", 2);
    WireReader r(partial);
    EXPECT_THROW(r.varint("v"), WireError);
}

TEST(WirePrimitives, NonBinaryBoolByteIsATypedError)
{
    const std::string two("\x02", 1);
    WireReader r(two);
    EXPECT_THROW(r.boolean("flag"), WireError);
}

TEST(WirePrimitives, StringLengthBeyondBufferIsATypedError)
{
    WireWriter w;
    w.varint(1000);   // claims 1000 bytes...
    w.raw("abc", 3);  // ...provides 3
    WireReader r(w.buffer());
    EXPECT_THROW(r.str("s"), WireError);
}

TEST(WirePrimitives, TrailingBytesAreATypedError)
{
    WireWriter w;
    w.varint(7);
    w.u8(9);
    WireReader r(w.buffer());
    EXPECT_EQ(r.varint("v"), 7u);
    EXPECT_THROW(r.expectEnd("blob"), WireError);
}

// ---------------------------------------------------------------------
// Struct round trips
// ---------------------------------------------------------------------

TEST(WireStructs, WorkloadSpecRoundTripsEveryField)
{
    WorkloadSpec spec = WorkloadSpec::trace("a/b/c.trace");
    spec.preset = "producer-consumer";
    spec.uniformBlocks = 5;
    spec.storeFraction = 0.875;
    spec.prodConsBlocks = 11;
    spec.lockBlocks = 13;
    spec.sectionOps = 42;
    spec.ycsbRecords = 4097;
    spec.ycsbTheta = 0.03125;
    spec.ycsbReadFraction = 0.28125;
    spec.ycsbUpdateFraction = 0.09375;
    spec.ycsbScanLen = -5;
    spec.tpccWarehouses = 129;
    spec.tpccHomeFraction = 0.40625;
    spec.tpccOpsPerTxn = -11;
    spec.tpccThinkOps = 77;

    WireWriter w;
    encodeWorkloadSpec(w, spec);
    WireReader r(w.buffer());
    const WorkloadSpec back = decodeWorkloadSpec(r);
    EXPECT_NO_THROW(r.expectEnd("workload spec"));
    EXPECT_TRUE(back == spec);
    EXPECT_FALSE(back != spec);
}

TEST(WireStructs, WorkloadSpecEqualityDiscriminatesEveryKnob)
{
    // operator== is the wire's serialization hook: each per-preset
    // knob perturbed alone must break equality, or a knob could ship
    // half-serialized without any test noticing.
    const WorkloadSpec base;
    const auto differs = [&](auto mutate) {
        WorkloadSpec s = base;
        mutate(s);
        EXPECT_TRUE(s != base);
    };
    differs([](WorkloadSpec &s) { s.preset = "hot"; });
    differs([](WorkloadSpec &s) { s.tracePath = "t.trace"; });
    differs([](WorkloadSpec &s) { s.uniformBlocks += 1; });
    differs([](WorkloadSpec &s) { s.storeFraction += 0.125; });
    differs([](WorkloadSpec &s) { s.prodConsBlocks += 1; });
    differs([](WorkloadSpec &s) { s.lockBlocks += 1; });
    differs([](WorkloadSpec &s) { s.sectionOps += 1; });
    differs([](WorkloadSpec &s) { s.ycsbRecords += 1; });
    differs([](WorkloadSpec &s) { s.ycsbTheta += 0.125; });
    differs([](WorkloadSpec &s) { s.ycsbReadFraction += 0.125; });
    differs([](WorkloadSpec &s) { s.ycsbUpdateFraction += 0.125; });
    differs([](WorkloadSpec &s) { s.ycsbScanLen += 1; });
    differs([](WorkloadSpec &s) { s.tpccWarehouses += 1; });
    differs([](WorkloadSpec &s) { s.tpccHomeFraction += 0.125; });
    differs([](WorkloadSpec &s) { s.tpccOpsPerTxn += 1; });
    differs([](WorkloadSpec &s) { s.tpccThinkOps += 1; });
}

TEST(WireStructs, EachWorkloadKnobSurvivesTheWireAlone)
{
    // Round-trip each knob's perturbation independently: catches a
    // codec that serializes knob A into knob B's slot (a pure
    // round-trip of an all-perturbed spec could still pass if two
    // same-typed fields were swapped both ways).
    std::vector<WorkloadSpec> variants;
    const auto variant = [&](auto mutate) {
        WorkloadSpec s;
        mutate(s);
        variants.push_back(s);
    };
    variant([](WorkloadSpec &s) { s.uniformBlocks = 123; });
    variant([](WorkloadSpec &s) { s.storeFraction = 0.71875; });
    variant([](WorkloadSpec &s) { s.prodConsBlocks = 77; });
    variant([](WorkloadSpec &s) { s.lockBlocks = 3; });
    variant([](WorkloadSpec &s) { s.sectionOps = -9; });
    variant([](WorkloadSpec &s) { s.ycsbRecords = 31; });
    variant([](WorkloadSpec &s) { s.ycsbTheta = 1.25; });
    variant([](WorkloadSpec &s) { s.ycsbReadFraction = 0.15625; });
    variant([](WorkloadSpec &s) { s.ycsbUpdateFraction = 0.46875; });
    variant([](WorkloadSpec &s) { s.ycsbScanLen = 201; });
    variant([](WorkloadSpec &s) { s.tpccWarehouses = 513; });
    variant([](WorkloadSpec &s) { s.tpccHomeFraction = 0.21875; });
    variant([](WorkloadSpec &s) { s.tpccOpsPerTxn = 1001; });
    variant([](WorkloadSpec &s) { s.tpccThinkOps = -2; });
    for (const WorkloadSpec &spec : variants) {
        WireWriter w;
        encodeWorkloadSpec(w, spec);
        WireReader r(w.buffer());
        const WorkloadSpec back = decodeWorkloadSpec(r);
        EXPECT_NO_THROW(r.expectEnd("workload spec"));
        EXPECT_TRUE(back == spec);
    }
}

TEST(WireStructs, TenantListRoundTripsAndEmptyStaysEmpty)
{
    SystemConfig cfg;
    EXPECT_TRUE(cfg.tenants.empty());
    {
        WireWriter w;
        encodeSystemConfig(w, cfg);
        WireReader r(w.buffer());
        EXPECT_TRUE(decodeSystemConfig(r).tenants.empty());
    }
    TenantSpec a;
    a.workload = WorkloadSpec("ycsb");
    a.workload.ycsbRecords = 2048;
    a.nodes = 192;
    TenantSpec b;
    b.workload = WorkloadSpec("tpcc");
    b.workload.tpccThinkOps = 2;
    b.nodes = 64;
    cfg.numNodes = 256;
    cfg.tenants = {a, b};
    WireWriter w;
    encodeSystemConfig(w, cfg);
    WireReader r(w.buffer());
    const SystemConfig back = decodeSystemConfig(r);
    ASSERT_EQ(back.tenants.size(), 2u);
    EXPECT_TRUE(back.tenants[0] == a);
    EXPECT_TRUE(back.tenants[1] == b);
}

TEST(WireStructs, SystemConfigRoundTripsEveryField)
{
    const SystemConfig cfg = exhaustiveConfig();
    WireWriter w;
    encodeSystemConfig(w, cfg);
    WireReader r(w.buffer());
    const SystemConfig back = decodeSystemConfig(r);
    EXPECT_NO_THROW(r.expectEnd("config"));
    expectSameConfig(cfg, back);
}

TEST(WireStructs, DefaultSystemConfigRoundTrips)
{
    WireWriter w;
    encodeSystemConfig(w, SystemConfig{});
    WireReader r(w.buffer());
    expectSameConfig(SystemConfig{}, decodeSystemConfig(r));
}

TEST(WireStructs, ExperimentSpecRoundTrips)
{
    ExperimentSpec spec;
    spec.cfg = exhaustiveConfig();
    spec.seeds = 17;
    spec.label = "TokenB - torus (inf bw)";
    WireWriter w;
    encodeExperimentSpec(w, spec);
    WireReader r(w.buffer());
    const ExperimentSpec back = decodeExperimentSpec(r);
    EXPECT_NO_THROW(r.expectEnd("spec"));
    expectSameConfig(spec.cfg, back.cfg);
    EXPECT_EQ(back.seeds, 17);
    EXPECT_EQ(back.label, spec.label);
}

TEST(WireStructs, ResultsRoundTripBitExactly)
{
    const System::Results res = exhaustiveResults();
    WireWriter w;
    encodeResults(w, res);
    WireReader r(w.buffer());
    const System::Results back = decodeResults(r);
    EXPECT_NO_THROW(r.expectEnd("results"));
    expectSameResults(res, back);
}

TEST(WireStructs, EmptyResultsRoundTrip)
{
    // A default Results is an empty metric registry: zero metrics,
    // just the count varint and the end-of-struct sentinel.
    WireWriter w;
    encodeResults(w, System::Results{});
    WireReader r(w.buffer());
    expectSameResults(System::Results{}, decodeResults(r));
}

TEST(WireStructs, CustomWorkloadFactoryIsRejected)
{
    SystemConfig cfg;
    cfg.workloadFactory = [](NodeId, int,
                             std::uint64_t) -> std::unique_ptr<Workload> {
        return nullptr;
    };
    WireWriter w;
    EXPECT_THROW(encodeSystemConfig(w, cfg), WireError);
}

TEST(WireStructs, TruncationAtEveryByteOffsetIsATypedError)
{
    // The cornerstone fuzz property (same loop as test_trace.cc):
    // every proper prefix of a valid encoding must throw WireError —
    // no crash, no out-of-bounds read, no accidental success.
    WireWriter w;
    encodeExperimentSpec(w, ExperimentSpec{exhaustiveConfig(), 3,
                                           "trunc"});
    const std::string full = w.buffer();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        WireReader r(full.data(), cut);
        EXPECT_THROW(decodeExperimentSpec(r), WireError);
    }
}

TEST(WireStructs, ResultsTruncationAtEveryByteOffsetIsATypedError)
{
    WireWriter w;
    encodeResults(w, exhaustiveResults());
    const std::string full = w.buffer();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        WireReader r(full.data(), cut);
        EXPECT_THROW(decodeResults(r), WireError);
    }
}

TEST(WireStructs, ProtocolByteOutOfRangeIsATypedError)
{
    WireWriter w;
    encodeSystemConfig(w, SystemConfig{});
    std::string buf = w.take();
    // The protocol byte follows numNodes (svarint 16 -> 1 byte) and
    // topology ("torus": varint len + 5 bytes).
    const std::size_t proto_at = 1 + 1 + 5;
    buf[proto_at] = char(200);
    WireReader r(buf);
    EXPECT_THROW(decodeSystemConfig(r), WireError);
}

TEST(WireStructs, DuplicateMetricNameOnWireIsATypedError)
{
    // A registry can never legitimately hold two metrics with one
    // name (addCounter throws), so a duplicate on the wire means a
    // corrupted or malicious peer — decode must refuse, not clobber.
    WireWriter w;
    w.varint(2);
    for (int i = 0; i < 2; ++i) {
        w.str("twice");
        w.u8(0);           // kind: counter
        w.boolean(false);
        w.varint(5);
    }
    WireReader r(w.buffer());
    EXPECT_THROW(decodeMetrics(r), WireError);
}

TEST(WireStructs, MetricKindByteOutOfRangeIsATypedError)
{
    WireWriter w;
    w.varint(1);
    w.str("m");
    w.u8(7);               // no such MetricKind
    w.boolean(true);
    w.varint(1);
    WireReader r(w.buffer());
    EXPECT_THROW(decodeMetrics(r), WireError);
}

TEST(WireStructs, MetricCountOverCapIsATypedError)
{
    // A count claiming 2^16+1 metrics must be rejected up front, not
    // looped over toward OOM.
    WireWriter w;
    w.varint(maxWireMetrics + 1);
    WireReader r(w.buffer());
    EXPECT_THROW(decodeMetrics(r), WireError);
}

TEST(WireStructs, LayoutSkewIsReportedAsVersionMismatch)
{
    // Flip the end-of-struct sentinel: the decode must say "layout
    // mismatch", the canary for a parent/worker version skew.
    WireWriter w;
    encodeResults(w, System::Results{});
    std::string buf = w.take();
    buf.back() = '\x00';
    WireReader r(buf);
    try {
        decodeResults(r);
        FAIL() << "skewed layout decoded successfully";
    } catch (const WireError &e) {
        EXPECT_NE(std::string(e.what()).find("layout mismatch"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------

TEST(WireFrames, HelloRoundTripsAndRejectsBadMagicAndVersion)
{
    EXPECT_NO_THROW(checkHelloPayload(encodeHelloPayload()));

    std::string bad_magic = encodeHelloPayload();
    bad_magic[0] = 'X';
    EXPECT_THROW(checkHelloPayload(bad_magic), WireError);

    WireWriter w;
    w.raw(wireMagic, sizeof(wireMagic));
    w.varint(wireVersion + 1);
    EXPECT_THROW(checkHelloPayload(w.buffer()), WireError);

    EXPECT_THROW(checkHelloPayload("TOK"), WireError);
}

TEST(WireFrames, HelloIdentityRoundTrips)
{
    // The v3 hello carries the worker's identity ("host:pid"); it
    // must survive the codec byte for byte, including empty and
    // awkward (spaces, colons, UTF-8-ish bytes) values.
    for (const std::string id :
         {std::string(), std::string("host:12345"),
          std::string("a b\tc:99"), std::string("\xc3\xa9:1"),
          std::string(maxHelloIdentity, 'x')}) {
        const HelloFrame hf =
            decodeHelloPayload(encodeHelloPayload(id));
        EXPECT_EQ(hf.version, wireVersion);
        EXPECT_EQ(hf.identity, id);
    }
}

TEST(WireFrames, HelloIdentityOverCapIsRejectedBothWays)
{
    // Encoding refuses an oversized identity; a hand-crafted payload
    // claiming one decodes to a typed WireError, not an allocation.
    EXPECT_THROW(
        encodeHelloPayload(std::string(maxHelloIdentity + 1, 'x')),
        WireError);

    WireWriter w;
    w.raw(wireMagic, sizeof(wireMagic));
    w.varint(wireVersion);
    w.str(std::string(maxHelloIdentity + 1, 'x'));
    EXPECT_THROW(checkHelloPayload(w.buffer()), WireError);
}

TEST(WireFrames, HelloTruncatedAtEveryByteOffsetIsATypedError)
{
    // The checkpoint-codec fuzz discipline applied to the hello:
    // every proper prefix must throw WireError — never succeed,
    // never crash, never throw anything untyped.
    const std::string full = encodeHelloPayload("host:4242");
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        EXPECT_THROW(checkHelloPayload(full.substr(0, cut)),
                     WireError);
    }
    EXPECT_NO_THROW(checkHelloPayload(full));
}

TEST(WireFrames, HelloTrailingBytesAreATypedError)
{
    // expectEnd discipline: a hello with bytes after the identity is
    // a different (future?) layout, not something to half-accept.
    std::string extra = encodeHelloPayload("h:1");
    extra.push_back('\x00');
    EXPECT_THROW(checkHelloPayload(extra), WireError);
}

TEST(WireFrames, HelloVersionIsCheckedBeforeIdentity)
{
    // A version-skewed peer's identity encoding may itself be
    // unparseable under our layout; the error the operator can act
    // on is "version mismatch", so it must win.
    WireWriter w;
    w.raw(wireMagic, sizeof(wireMagic));
    w.varint(wireVersion + 7);
    // No identity field at all — a v(N+7) hello need not have one.
    try {
        checkHelloPayload(w.buffer());
        FAIL() << "skewed hello decoded successfully";
    } catch (const WireError &e) {
        EXPECT_NE(std::string(e.what()).find("version mismatch"),
                  std::string::npos)
            << e.what();
    }
}

TEST(WireFrames, ExtractionIsIncrementalByteByByte)
{
    std::string stream;
    appendFrame(stream, FrameType::job, "payload-one");
    appendFrame(stream, FrameType::result, "");
    appendFrame(stream, FrameType::error, std::string(300, 'e'));

    // Feed one byte at a time: a frame must appear exactly when its
    // last byte arrives, and partial frames must never consume input.
    std::string buf;
    std::size_t pos = 0;
    std::vector<Frame> got;
    for (char c : stream) {
        buf.push_back(c);
        Frame f;
        while (tryExtractFrame(buf, pos, f))
            got.push_back(f);
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].type, FrameType::job);
    EXPECT_EQ(got[0].payload, "payload-one");
    EXPECT_EQ(got[1].type, FrameType::result);
    EXPECT_EQ(got[1].payload, "");
    EXPECT_EQ(got[2].type, FrameType::error);
    EXPECT_EQ(got[2].payload, std::string(300, 'e'));
    EXPECT_EQ(pos, stream.size());
}

TEST(WireFrames, UnknownFrameTypeIsATypedError)
{
    std::string buf("\x09\x00", 2);
    std::size_t pos = 0;
    Frame f;
    EXPECT_THROW(tryExtractFrame(buf, pos, f), WireError);
}

TEST(WireFrames, OversizedPayloadLengthIsATypedError)
{
    // A length claiming 2^40 bytes must be rejected up front, not
    // buffered toward OOM.
    std::string buf;
    buf.push_back(static_cast<char>(FrameType::job));
    WireWriter w;
    w.varint(1ull << 40);
    buf += w.buffer();
    std::size_t pos = 0;
    Frame f;
    EXPECT_THROW(tryExtractFrame(buf, pos, f), WireError);
}

TEST(WireFrames, JobResultErrorPayloadsRoundTrip)
{
    const SystemConfig cfg = exhaustiveConfig();
    const JobFrame job =
        decodeJobPayload(encodeJobPayload(42, cfg, 1234567));
    EXPECT_EQ(job.jobId, 42u);
    EXPECT_EQ(job.seed, 1234567u);
    expectSameConfig(job.cfg, cfg);

    const System::Results res = exhaustiveResults();
    const ResultFrame rf =
        decodeResultPayload(encodeResultPayload(7, res));
    EXPECT_EQ(rf.jobId, 7u);
    expectSameResults(rf.results, res);

    const ErrorFrame ef = decodeErrorPayload(
        encodeErrorPayload(9, "system exceeded maxTicks"));
    EXPECT_EQ(ef.jobId, 9u);
    EXPECT_EQ(ef.message, "system exceeded maxTicks");
}

TEST(WireFrames, ResultPayloadTruncationAtEveryByteIsATypedError)
{
    const std::string full =
        encodeResultPayload(3, exhaustiveResults());
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        EXPECT_THROW(decodeResultPayload(full.substr(0, cut)),
                     WireError);
    }
}

// ---------------------------------------------------------------------
// Checkpoint layer
// ---------------------------------------------------------------------

TEST(WireCheckpoint, Crc32MatchesTheIeeeKnownAnswer)
{
    // The CRC-32/IEEE check value: crc("123456789") = 0xcbf43926.
    // Pins the polynomial, reflection, and final xor all at once.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0u);
    EXPECT_NE(crc32("123456789", 9), crc32("123456788", 9));
}

TEST(WireCheckpoint, HeaderRoundTripsAndStopsAtItsOwnEnd)
{
    const std::string hdr =
        encodeCheckpointHeader(0xdeadbeefcafef00dULL, 12);
    std::size_t pos = 0;
    const CheckpointHeader back = decodeCheckpointHeader(hdr, pos);
    EXPECT_EQ(back.fingerprint, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(back.totalShards, 12u);
    // pos lands exactly on the first record byte even with trailing
    // data present (the resume path decodes header-then-records from
    // one buffer).
    EXPECT_EQ(pos, hdr.size());
    std::size_t pos2 = 0;
    decodeCheckpointHeader(hdr + "records follow", pos2);
    EXPECT_EQ(pos2, hdr.size());
}

TEST(WireCheckpoint, HeaderBadMagicAndVersionAreCheckpointErrors)
{
    std::string bad = encodeCheckpointHeader(1, 2);
    bad[0] = 'X';
    std::size_t pos = 0;
    EXPECT_THROW(decodeCheckpointHeader(bad, pos), CheckpointError);

    // Not a wire stream either: the pipe magic must not be accepted.
    std::string pipe_magic = encodeCheckpointHeader(1, 2);
    std::memcpy(&pipe_magic[0], wireMagic, sizeof(wireMagic));
    pos = 0;
    EXPECT_THROW(decodeCheckpointHeader(pipe_magic, pos),
                 CheckpointError);

    std::string vbad(checkpointMagic, sizeof(checkpointMagic));
    WireWriter w;
    w.varint(wireVersion + 1);
    vbad += w.buffer();
    pos = 0;
    EXPECT_THROW(decodeCheckpointHeader(vbad, pos), CheckpointError);
}

TEST(WireCheckpoint, HeaderTruncationAtEveryByteIsACheckpointError)
{
    const std::string full = encodeCheckpointHeader(
        std::numeric_limits<std::uint64_t>::max(), 100000);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        std::size_t pos = 0;
        EXPECT_THROW(decodeCheckpointHeader(full.substr(0, cut), pos),
                     CheckpointError);
    }
}

TEST(WireCheckpoint, RecordRoundTripsBitExactly)
{
    const System::Results res = exhaustiveResults();
    const std::string rec = encodeCheckpointRecord(3, 7, res);
    std::size_t pos = 0;
    CheckpointRecord back;
    ASSERT_TRUE(tryExtractCheckpointRecord(rec, pos, back));
    EXPECT_EQ(back.spec, 3u);
    EXPECT_EQ(back.seed, 7u);
    expectSameResults(back.results, res);
    EXPECT_EQ(pos, rec.size());
    // And nothing more.
    EXPECT_FALSE(tryExtractCheckpointRecord(rec, pos, back));
}

TEST(WireCheckpoint, RecordStreamExtractsIncrementally)
{
    // Byte-at-a-time feeding, mirroring the frame-layer test: a
    // record appears exactly when its last (CRC) byte arrives. This
    // is the torn-tail property — any prefix is "no record yet",
    // never an error, never a partial success.
    std::string stream = encodeCheckpointRecord(0, 0, System::Results{});
    stream += encodeCheckpointRecord(1, 2, exhaustiveResults());
    std::string buf;
    std::size_t pos = 0;
    std::vector<CheckpointRecord> got;
    for (char c : stream) {
        buf.push_back(c);
        CheckpointRecord r;
        while (tryExtractCheckpointRecord(buf, pos, r))
            got.push_back(r);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].spec, 0u);
    EXPECT_EQ(got[1].spec, 1u);
    EXPECT_EQ(got[1].seed, 2u);
    EXPECT_EQ(pos, stream.size());
}

TEST(WireCheckpoint, CorruptRecordByteIsATypedErrorAtEveryOffset)
{
    // Flip each byte of a complete record: whichever field it lands
    // in (length varint, payload, CRC), extraction must either throw
    // WireError or report "no complete record" — never return a
    // record that differs from what was written.
    const std::string good = encodeCheckpointRecord(5, 6,
                                                    exhaustiveResults());
    for (std::size_t i = 0; i < good.size(); ++i) {
        SCOPED_TRACE("flip=" + std::to_string(i));
        std::string bad = good;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        std::size_t pos = 0;
        CheckpointRecord r;
        try {
            if (tryExtractCheckpointRecord(bad, pos, r)) {
                FAIL() << "corrupt record extracted at flip " << i;
            }
            // false: the flip enlarged the claimed length — reads as
            // an incomplete (torn) record, which resume re-runs.
        } catch (const WireError &) {
            // CRC (or structural) mismatch: also correct.
        }
    }
}

// ---------------------------------------------------------------------
// Warm-state snapshot codec (harness/snapshot.hh)
// ---------------------------------------------------------------------

/** A small warmed system whose snapshot exercises every state class:
 *  sequencer counters + L1, cache tags/LRU/tokens/owner/data, memory
 *  token records and written backing-store blocks. */
SystemConfig
snapshotConfig(ProtocolKind proto)
{
    SystemConfig cfg;
    cfg.numNodes = 4;
    cfg.topology = proto == ProtocolKind::snooping ? "tree" : "torus";
    cfg.protocol = proto;
    cfg.l2 = CacheParams{32 * 1024, 2, 64, nsToTicks(6)};
    cfg.workload = "oltp";
    cfg.workload.storeFraction = 0.4;
    cfg.seed = 7;
    return cfg;
}

std::string
warmedSnapshot(const SystemConfig &cfg, std::uint64_t ff_ops = 400)
{
    System sys(cfg);
    sys.fastForward(ff_ops);
    return saveWarmSnapshot(sys);
}

TEST(WireSnapshot, EveryStateClassRoundTripsToIdenticalBytes)
{
    // Canonical-encoding property per protocol family: decoding a
    // snapshot and re-encoding the restored system reproduces the
    // byte-identical buffer. (tokenD/M/A/Null share TokenB's codec
    // path — test_sampling.cc covers them; the families with distinct
    // warm-state codecs are what matters here.)
    const ProtocolKind protos[] = {
        ProtocolKind::snooping, ProtocolKind::directory,
        ProtocolKind::hammer, ProtocolKind::tokenB,
    };
    for (ProtocolKind proto : protos) {
        SCOPED_TRACE(protocolName(proto));
        const SystemConfig cfg = snapshotConfig(proto);
        const std::string snap = warmedSnapshot(cfg);
        System sys(cfg);
        loadWarmSnapshot(sys, snap);
        EXPECT_EQ(saveWarmSnapshot(sys), snap);
    }
}

TEST(WireSnapshot, HeaderPeeksWithoutTouchingTheBody)
{
    const SystemConfig cfg = snapshotConfig(ProtocolKind::tokenB);
    const std::string snap = warmedSnapshot(cfg, 123);
    const SnapshotHeader hdr = peekSnapshotHeader(snap);
    EXPECT_EQ(hdr.fingerprint, snapshotShapeFingerprint(cfg));
    EXPECT_EQ(hdr.numNodes, cfg.numNodes);
    EXPECT_EQ(hdr.warmOps, 123u);
    EXPECT_EQ(hdr.protocol,
              static_cast<std::uint8_t>(ProtocolKind::tokenB));
}

TEST(WireSnapshot, BadMagicAndVersionAreTypedErrors)
{
    const SystemConfig cfg = snapshotConfig(ProtocolKind::tokenB);
    std::string bad_magic = warmedSnapshot(cfg);
    bad_magic[0] = 'X';
    EXPECT_THROW(peekSnapshotHeader(bad_magic), SnapshotError);

    std::string bad_version = warmedSnapshot(cfg);
    bad_version[sizeof snapshotMagic] =
        static_cast<char>(snapshotVersion + 1);
    EXPECT_THROW(peekSnapshotHeader(bad_version), SnapshotError);

    // A checkpoint or pipe stream is not a snapshot.
    EXPECT_THROW(peekSnapshotHeader(encodeHelloPayload()),
                 SnapshotError);
}

TEST(WireSnapshot, WrongShapeFingerprintIsATypedError)
{
    const SystemConfig cfg = snapshotConfig(ProtocolKind::tokenB);
    const std::string snap = warmedSnapshot(cfg);

    // Byte-level: flip one fingerprint byte (it follows magic and
    // version as a varint; flipping a low bit of its first byte never
    // breaks varint framing).
    std::string skewed = snap;
    skewed[sizeof snapshotMagic + 1] ^= 0x01;
    System sys(cfg);
    EXPECT_THROW(loadWarmSnapshot(sys, skewed), SnapshotError);

    // Config-level: a bound field differs on the restoring side.
    SystemConfig other = cfg;
    other.seed = cfg.seed + 1;
    System sys2(other);
    EXPECT_THROW(loadWarmSnapshot(sys2, snap), SnapshotError);
}

TEST(WireSnapshot, TruncationAtEveryByteOffsetIsATypedError)
{
    const SystemConfig cfg = snapshotConfig(ProtocolKind::tokenB);
    const std::string full = warmedSnapshot(cfg, 200);
    System sys(cfg);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        ASSERT_TRUE(sys.reset(cfg));
        try {
            loadWarmSnapshot(sys, full.substr(0, cut));
            FAIL() << "truncated snapshot loaded";
        } catch (const WireError &) {
            // Ran off the end of a field: the common case.
        } catch (const SnapshotError &) {
            // Truncation inside the fingerprint varint shortens it to
            // a valid smaller value: reads as a shape mismatch.
        }
    }
    ASSERT_TRUE(sys.reset(cfg));
    EXPECT_NO_THROW(loadWarmSnapshot(sys, full));
}

TEST(WireSnapshot, CorruptByteSweepNeverCrashesOrMisparses)
{
    // Flip each byte of a valid snapshot. Every outcome must be a
    // typed error (WireError / SnapshotError) or a clean load into a
    // self-consistent state — one whose canonical re-encode loads and
    // re-encodes to itself. (A flip can land in a stored data value
    // and decode fine; it can also produce a non-canonical buffer —
    // non-minimal varint, default-valued entry — so byte equality
    // with the corrupted input is not the contract, idempotence of
    // the restored state is.) Anything else — a crash, an untyped
    // exception — fails the test.
    const SystemConfig cfg = snapshotConfig(ProtocolKind::tokenB);
    const std::string good = warmedSnapshot(cfg, 200);
    System sys(cfg);
    for (std::size_t i = 0; i < good.size(); ++i) {
        SCOPED_TRACE("flip=" + std::to_string(i));
        std::string bad = good;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        ASSERT_TRUE(sys.reset(cfg));
        try {
            loadWarmSnapshot(sys, bad);
            const std::string re = saveWarmSnapshot(sys);
            ASSERT_TRUE(sys.reset(cfg));
            loadWarmSnapshot(sys, re);
            EXPECT_EQ(saveWarmSnapshot(sys), re);
        } catch (const WireError &) {
        } catch (const SnapshotError &) {
        }
    }
}

TEST(WireSnapshot, TrailingBytesAreATypedError)
{
    const SystemConfig cfg = snapshotConfig(ProtocolKind::directory);
    std::string extra = warmedSnapshot(cfg);
    extra.push_back('\x00');
    System sys(cfg);
    EXPECT_THROW(loadWarmSnapshot(sys, extra), WireError);
}

TEST(WireCheckpoint, FingerprintSeesSpecsSeedsAndOrder)
{
    std::vector<ExperimentSpec> a;
    a.push_back(ExperimentSpec{exhaustiveConfig(), 3, "p1"});
    a.push_back(ExperimentSpec{SystemConfig{}, 2, "p2"});
    EXPECT_EQ(sweepFingerprint(a), sweepFingerprint(a));

    std::vector<ExperimentSpec> reordered{a[1], a[0]};
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(reordered));

    std::vector<ExperimentSpec> more_seeds = a;
    more_seeds[0].seeds = 4;
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(more_seeds));

    std::vector<ExperimentSpec> other_cfg = a;
    other_cfg[1].cfg.numNodes += 1;
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(other_cfg));

    std::vector<ExperimentSpec> relabeled = a;
    relabeled[0].label = "renamed";
    EXPECT_NE(sweepFingerprint(a), sweepFingerprint(relabeled));
}

} // namespace
} // namespace tokensim
