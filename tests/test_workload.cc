/**
 * @file
 * Unit tests for the workload generators: Zipf sampling, preset
 * sanity, migratory pairing, producer-consumer roles, transaction
 * cadence, and determinism.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/commercial.hh"
#include "workload/tpcc.hh"
#include "workload/workload.hh"
#include "workload/ycsb.hh"

namespace tokensim {
namespace {

TEST(Zipf, UniformWhenThetaZero)
{
    ZipfSampler z(10, 0.0);
    Rng rng(1);
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 20000; ++i)
        ++hits[z.sample(rng)];
    for (int h : hits) {
        EXPECT_GT(h, 1600);
        EXPECT_LT(h, 2400);
    }
}

TEST(Zipf, SkewsTowardLowIndices)
{
    ZipfSampler z(1000, 0.9);
    Rng rng(2);
    int first_decile = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i)
        first_decile += z.sample(rng) < 100;
    // With theta=0.9, far more than 10% of probability mass is in
    // the first 10% of items.
    EXPECT_GT(first_decile, samples / 3);
}

TEST(Zipf, AliasTableMatchesClosedFormWeights)
{
    // Frequency / chi-squared goodness-of-fit of the O(1) alias-table
    // sampler against the closed-form Zipf pmf it was built from.
    const std::size_t n = 64;
    const double theta = 0.8;
    ZipfSampler z(n, theta);

    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_GT(z.weight(k), 0.0);
        if (k > 0)
            EXPECT_LT(z.weight(k), z.weight(k - 1));
        total += z.weight(k);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);

    Rng rng(7);
    const int samples = 200000;
    std::vector<int> obs(n, 0);
    for (int i = 0; i < samples; ++i)
        ++obs[z.sample(rng)];

    double chi2 = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        const double expected = samples * z.weight(k);
        const double d = obs[k] - expected;
        chi2 += d * d / expected;
    }
    // 63 degrees of freedom; the p = 0.001 critical value is ~103.4.
    // The RNG is deterministic, so this is a regression bound, not a
    // flaky statistical test.
    EXPECT_LT(chi2, 103.4);
}

TEST(Zipf, StaysInRange)
{
    ZipfSampler z(7, 0.5);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(z.sample(rng), 7u);
}

TEST(CommercialParams, PresetFractionsSumToOne)
{
    for (const char *name : {"oltp", "apache", "specjbb"}) {
        const CommercialParams p = CommercialParams::preset(name);
        EXPECT_NEAR(p.fracPrivateHot + p.fracPrivateCold +
                        p.fracSharedRead + p.fracMigratory +
                        p.fracProdCons,
                    1.0, 1e-9)
            << name;
    }
    EXPECT_THROW(CommercialParams::preset("tpc-h"),
                 std::invalid_argument);
}

TEST(CommercialParams, OltpIsMostMigratory)
{
    // OLTP's lock-dominated behavior is the paper's motivating
    // pattern; the preset must reflect it.
    EXPECT_GT(CommercialParams::oltp().fracMigratory,
              CommercialParams::apache().fracMigratory);
    EXPECT_GT(CommercialParams::oltp().fracMigratory,
              CommercialParams::specjbb().fracMigratory);
    // SPECjbb shares least.
    EXPECT_GT(CommercialParams::specjbb().fracPrivateHot,
              CommercialParams::oltp().fracPrivateHot);
}

TEST(CommercialWorkload, MigratorySectionsPairLoadAndStore)
{
    AddressMap map;
    CommercialParams p = CommercialParams::oltp();
    CommercialWorkload w(0, 4, map, p, 42);
    const Addr mig_base = map.migratoryBase(4);
    const Addr mig_end = mig_base + map.migratoryBlocks * 64;
    int pairs = 0;
    WorkloadOp prev{};
    bool have_prev = false;
    for (int i = 0; i < 20000; ++i) {
        const WorkloadOp op = w.next();
        if (have_prev && prev.op == MemOp::load &&
            prev.addr >= mig_base && prev.addr < mig_end) {
            // A migratory load is immediately followed by a store to
            // the same address (the lock/counter RMW pattern).
            EXPECT_EQ(op.op, MemOp::store);
            EXPECT_EQ(op.addr, prev.addr);
            ++pairs;
        }
        prev = op;
        have_prev = true;
    }
    EXPECT_GT(pairs, 1000);   // OLTP is migratory-heavy
}

TEST(CommercialWorkload, ProducerConsumerRolesAreStatic)
{
    AddressMap map;
    CommercialParams p = CommercialParams::apache();
    const Addr pc_base = map.prodConsBase(4);
    const Addr pc_end = pc_base + map.prodConsBlocks * 64;

    // Collect per-address op kinds from two different nodes; an
    // address written by node A must never be written by node B.
    std::map<Addr, int> writer_count;
    for (NodeId node = 0; node < 4; ++node) {
        CommercialWorkload w(node, 4, map, p, 100 + node);
        std::map<Addr, bool> wrote;
        for (int i = 0; i < 30000; ++i) {
            const WorkloadOp op = w.next();
            if (op.addr >= pc_base && op.addr < pc_end &&
                op.op == MemOp::store && !wrote[op.addr]) {
                wrote[op.addr] = true;
                ++writer_count[op.addr];
            }
        }
    }
    for (const auto &[addr, writers] : writer_count)
        EXPECT_EQ(writers, 1) << std::hex << addr;
}

TEST(CommercialWorkload, PrivateAccessesStayInOwnRegion)
{
    AddressMap map;
    CommercialParams p = CommercialParams::specjbb();
    CommercialWorkload w(2, 4, map, p, 7);
    const Addr own_base = map.privateBase(2);
    const Addr own_end = own_base + map.privateBlocksPerNode * 64;
    const Addr shared_start = map.sharedBase(4);
    for (int i = 0; i < 10000; ++i) {
        const WorkloadOp op = w.next();
        const bool in_own = op.addr >= own_base && op.addr < own_end;
        const bool in_shared = op.addr >= shared_start;
        EXPECT_TRUE(in_own || in_shared)
            << "op touched another node's private region: "
            << std::hex << op.addr;
    }
}

TEST(CommercialWorkload, TransactionCadence)
{
    AddressMap map;
    CommercialParams p = CommercialParams::oltp();
    p.opsPerTransaction = 10;
    CommercialWorkload w(0, 4, map, p, 5);
    int count = 0;
    int transactions = 0;
    for (int i = 0; i < 1000; ++i) {
        ++count;
        if (w.next().endsTransaction) {
            EXPECT_EQ(count % 10, 0);
            ++transactions;
        }
    }
    EXPECT_EQ(transactions, 100);
}

TEST(CommercialWorkload, DeterministicPerSeed)
{
    AddressMap map;
    CommercialParams p = CommercialParams::apache();
    CommercialWorkload a(1, 4, map, p, 99);
    CommercialWorkload b(1, 4, map, p, 99);
    for (int i = 0; i < 1000; ++i) {
        const WorkloadOp x = a.next();
        const WorkloadOp y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.op, y.op);
    }
}

TEST(MicroWorkloads, UniformSharedHitsWholeRange)
{
    UniformSharedWorkload w(16, 0.5, 64, 3);
    std::set<Addr> seen;
    int stores = 0;
    for (int i = 0; i < 4000; ++i) {
        const WorkloadOp op = w.next();
        seen.insert(op.addr);
        stores += op.op == MemOp::store;
    }
    EXPECT_EQ(seen.size(), 16u);
    EXPECT_NEAR(stores / 4000.0, 0.5, 0.05);
}

TEST(MicroWorkloads, HotBlockAlwaysSameAddress)
{
    HotBlockWorkload w(0x1000, 1.0, 4);
    for (int i = 0; i < 100; ++i) {
        const WorkloadOp op = w.next();
        EXPECT_EQ(op.addr, 0x1000u);
        EXPECT_EQ(op.op, MemOp::store);
    }
}

TEST(ProducerConsumerPreset, RolesAreStaticAndDisjoint)
{
    AddressMap map;
    const Addr base = map.prodConsBase(4);
    const Addr end = base + map.prodConsBlocks * 64;
    // Any block one node stores to must never be stored by another,
    // and every access stays inside the producer-consumer region.
    std::map<Addr, int> writers;
    for (NodeId node = 0; node < 4; ++node) {
        ProducerConsumerWorkload w(node, 4, map, 64, 10 + node);
        std::map<Addr, bool> wrote;
        int stores = 0;
        for (int i = 0; i < 5000; ++i) {
            const WorkloadOp op = w.next();
            ASSERT_GE(op.addr, base);
            ASSERT_LT(op.addr, end);
            if (op.op == MemOp::store) {
                ++stores;
                if (!wrote[op.addr]) {
                    wrote[op.addr] = true;
                    ++writers[op.addr];
                }
            }
        }
        // With 64 blocks over 4 nodes each node produces ~1/4.
        EXPECT_GT(stores, 5000 / 8);
        EXPECT_LT(stores, 5000 / 2);
    }
    for (const auto &[addr, count] : writers)
        EXPECT_EQ(count, 1) << std::hex << addr;
}

TEST(LockPingPreset, AcquireSectionReleaseShape)
{
    AddressMap map;
    const Addr lock_base = map.migratoryBase(4);
    const Addr lock_end = lock_base + map.migratoryBlocks * 64;
    const int section_ops = 3;
    LockPingWorkload w(1, 4, map, 4, section_ops, 77);

    for (int iter = 0; iter < 500; ++iter) {
        // Acquire: load then store the same lock block.
        const WorkloadOp acq_load = w.next();
        ASSERT_EQ(acq_load.op, MemOp::load);
        ASSERT_GE(acq_load.addr, lock_base);
        ASSERT_LT(acq_load.addr, lock_end);
        ASSERT_FALSE(acq_load.endsTransaction);
        const WorkloadOp acq_store = w.next();
        ASSERT_EQ(acq_store.op, MemOp::store);
        ASSERT_EQ(acq_store.addr, acq_load.addr);

        // Critical section: private accesses only.
        for (int i = 0; i < section_ops; ++i) {
            const WorkloadOp op = w.next();
            ASSERT_GE(op.addr, map.privateBase(1));
            ASSERT_LT(op.addr, map.privateBase(2));
            ASSERT_FALSE(op.endsTransaction);
        }

        // Release: a store to the held lock ends the transaction.
        const WorkloadOp rel = w.next();
        ASSERT_EQ(rel.op, MemOp::store);
        ASSERT_EQ(rel.addr, acq_load.addr);
        ASSERT_TRUE(rel.endsTransaction);
    }
}

TEST(LockPingPreset, ContendersShareTheLockSet)
{
    // Every node must draw locks from the same small set — that is
    // what makes the lines ping-pong.
    AddressMap map;
    std::set<Addr> locks_seen[2];
    for (int n = 0; n < 2; ++n) {
        LockPingWorkload w(static_cast<NodeId>(n), 4, map, 2, 1, n);
        for (int i = 0; i < 400; ++i) {
            const WorkloadOp op = w.next();
            if (op.addr >= map.migratoryBase(4))
                locks_seen[n].insert(op.addr);
        }
    }
    EXPECT_EQ(locks_seen[0].size(), 2u);
    EXPECT_EQ(locks_seen[0], locks_seen[1]);
}

TEST(MicroWorkloads, PrivateRegionsDisjointAcrossNodes)
{
    AddressMap map;
    PrivateWorkload w0(0, map, 1024, 0.3, 1);
    PrivateWorkload w1(1, map, 1024, 0.3, 2);
    std::set<Addr> a0, a1;
    for (int i = 0; i < 2000; ++i) {
        a0.insert(w0.next().addr);
        a1.insert(w1.next().addr);
    }
    for (Addr a : a0)
        EXPECT_FALSE(a1.count(a));
}

TEST(YcsbPreset, AddressesStayInTable)
{
    AddressMap map;
    YcsbParams p;
    p.records = 4096;
    YcsbWorkload w(2, 8, map, p, 7);
    const Addr base = map.tableBase(8);
    const Addr limit = base + p.records * map.blockBytes;
    for (int i = 0; i < 5000; ++i) {
        const Addr a = w.next().addr;
        EXPECT_GE(a, base);
        EXPECT_LT(a, limit);
        EXPECT_EQ((a - base) % map.blockBytes, 0u);
    }
}

TEST(YcsbPreset, MixMatchesFractions)
{
    // Walk transaction by transaction and classify: a lone load is a
    // read, a load+store pair to one record is an update, a run of
    // scanLen loads is a scan.
    AddressMap map;
    YcsbParams p;
    p.records = 1 << 14;
    p.readFraction = 0.6;
    p.updateFraction = 0.3;
    p.scanLen = 4;
    YcsbWorkload w(0, 4, map, p, 11);
    int reads = 0, updates = 0, scans = 0;
    const int txns = 20000;
    for (int t = 0; t < txns; ++t) {
        std::vector<WorkloadOp> ops;
        do {
            ops.push_back(w.next());
        } while (!ops.back().endsTransaction);
        if (ops.size() == 1 && ops[0].op == MemOp::load) {
            ++reads;
        } else if (ops.size() == 2 && ops[0].op == MemOp::load &&
                   ops[1].op == MemOp::store &&
                   ops[0].addr == ops[1].addr) {
            ++updates;
        } else {
            ++scans;
            EXPECT_EQ(ops.size(),
                      static_cast<std::size_t>(p.scanLen));
            for (std::size_t i = 0; i < ops.size(); ++i) {
                EXPECT_EQ(ops[i].op, MemOp::load);
                if (i > 0) {
                    // Sequential records, wrapping mod the table.
                    const Addr base = map.tableBase(4);
                    const std::uint64_t prev =
                        (ops[i - 1].addr - base) / map.blockBytes;
                    const std::uint64_t cur =
                        (ops[i].addr - base) / map.blockBytes;
                    EXPECT_EQ(cur, (prev + 1) % p.records);
                }
            }
        }
    }
    EXPECT_NEAR(reads / double(txns), 0.6, 0.02);
    EXPECT_NEAR(updates / double(txns), 0.3, 0.02);
    EXPECT_NEAR(scans / double(txns), 0.1, 0.02);
}

TEST(YcsbPreset, ScrambleScattersHotKeysAcrossTable)
{
    // The Zipf-hot low ranks must not cluster at the table's start:
    // scrambled positions of ranks 0..63 should spread over the full
    // record range.
    const std::uint64_t n = 1 << 16;
    std::set<std::uint64_t> positions;
    std::uint64_t above_half = 0;
    for (std::uint64_t rank = 0; rank < 64; ++rank) {
        const std::uint64_t k = YcsbWorkload::scramble(rank, n);
        EXPECT_LT(k, n);
        positions.insert(k);
        above_half += k >= n / 2;
    }
    EXPECT_GE(positions.size(), 60u);   // essentially no collisions
    EXPECT_GT(above_half, 16u);         // not clustered low
    EXPECT_LT(above_half, 48u);         // not clustered high
}

TEST(YcsbPreset, DeterministicPerSeed)
{
    AddressMap map;
    YcsbParams p;
    YcsbWorkload a(1, 4, map, p, 99);
    YcsbWorkload b(1, 4, map, p, 99);
    for (int i = 0; i < 2000; ++i) {
        const WorkloadOp x = a.next();
        const WorkloadOp y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.op, y.op);
        EXPECT_EQ(x.endsTransaction, y.endsTransaction);
    }
}

TEST(TpccPreset, TransactionShape)
{
    AddressMap map;
    TpccParams p;
    p.opsPerTxn = 6;
    p.thinkOps = 3;
    const int num_nodes = 4;
    TpccWorkload w(1, num_nodes, map, p, 13);
    const Addr table = map.tableBase(num_nodes);
    const Addr priv = map.privateBase(1);
    for (int t = 0; t < 200; ++t) {
        // Header RMW pair: load + store of some warehouse's block 0.
        const WorkloadOp h0 = w.next();
        const WorkloadOp h1 = w.next();
        EXPECT_EQ(h0.op, MemOp::load);
        EXPECT_EQ(h1.op, MemOp::store);
        EXPECT_EQ(h0.addr, h1.addr);
        EXPECT_GE(h0.addr, table);
        const std::uint64_t slab_bytes =
            TpccWorkload::kSlabBlocks * map.blockBytes;
        EXPECT_EQ((h0.addr - table) % slab_bytes, 0u);
        const std::uint64_t warehouse = (h0.addr - table) / slab_bytes;

        // opsPerTxn record accesses inside that warehouse's slab; the
        // last one ends the transaction.
        for (int i = 0; i < p.opsPerTxn; ++i) {
            const WorkloadOp r = w.next();
            EXPECT_EQ((r.addr - table) / slab_bytes, warehouse);
            EXPECT_NE((r.addr - table) % slab_bytes, 0u);
            EXPECT_EQ(r.endsTransaction, i == p.opsPerTxn - 1);
        }

        // thinkOps private accesses.
        for (int i = 0; i < p.thinkOps; ++i) {
            const WorkloadOp th = w.next();
            EXPECT_GE(th.addr, priv);
            EXPECT_LT(th.addr, map.privateBase(2));
            EXPECT_FALSE(th.endsTransaction);
        }
    }
}

TEST(TpccPreset, WarehouseLocalityMatchesHomeFraction)
{
    AddressMap map;
    TpccParams p;
    p.homeFraction = 0.85;
    p.thinkOps = 0;
    const int num_nodes = 8;
    TpccWorkload w(3, num_nodes, map, p, 17);
    EXPECT_EQ(w.homeWarehouse(), 3u);
    const Addr table = map.tableBase(num_nodes);
    const std::uint64_t slab_bytes =
        TpccWorkload::kSlabBlocks * map.blockBytes;
    int home = 0;
    const int txns = 20000;
    for (int t = 0; t < txns; ++t) {
        const std::uint64_t warehouse =
            (w.next().addr - table) / slab_bytes;
        EXPECT_LT(warehouse, static_cast<std::uint64_t>(num_nodes));
        home += warehouse == w.homeWarehouse();
        // Drain the rest of the transaction.
        while (!w.next().endsTransaction) {}
    }
    // P(home) = homeFraction + (1 - homeFraction)/warehouses.
    EXPECT_NEAR(home / double(txns), 0.85 + 0.15 / 8, 0.02);
}

TEST(TpccPreset, ZeroWarehousesMeansOnePerNode)
{
    AddressMap map;
    TpccParams p;   // warehouses = 0
    const int num_nodes = 6;
    std::set<std::uint64_t> homes;
    for (int n = 0; n < num_nodes; ++n) {
        TpccWorkload w(static_cast<NodeId>(n), num_nodes, map, p,
                       n + 1);
        homes.insert(w.homeWarehouse());
    }
    EXPECT_EQ(homes.size(), static_cast<std::size_t>(num_nodes));
}

TEST(TpccPreset, DeterministicPerSeed)
{
    AddressMap map;
    TpccParams p;
    TpccWorkload a(2, 8, map, p, 123);
    TpccWorkload b(2, 8, map, p, 123);
    for (int i = 0; i < 2000; ++i) {
        const WorkloadOp x = a.next();
        const WorkloadOp y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.op, y.op);
        EXPECT_EQ(x.endsTransaction, y.endsTransaction);
    }
}

} // namespace
} // namespace tokensim
